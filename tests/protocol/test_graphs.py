"""Property tests of the lifeline-graph builders.

Every builder must hold four invariants for *every* rank count —
including non-powers-of-two, where the original hard-coded hypercube
scheme was never exercised: no self-edges, no duplicates, every
partner in range, at most ``count`` partners, and deterministic
output.  ``ring`` additionally guarantees a symmetric relation;
``regtree`` becomes symmetric once ``count >= 4`` admits the parent,
both children and the root ring.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lifeline.worker import lifeline_partners
from repro.protocol.graphs import (
    SYMMETRIC_GRAPHS,
    graph_by_name,
    hypercube_partners,
    random_partners,
    regtree_partners,
    ring_partners,
)
from repro.protocol.regions import RegionMap

BUILDERS = {
    "hypercube": hypercube_partners,
    "ring": ring_partners,
    "random": random_partners,
    "regtree": regtree_partners,
}

# Deliberately odd sizes: primes, powers of two +- 1, tiny jobs.
nranks_st = st.sampled_from([1, 2, 3, 5, 7, 8, 13, 16, 17, 31, 32, 40, 64])
counts = st.integers(min_value=0, max_value=8)
seeds = st.integers(min_value=0, max_value=2**31)


def _region_map(nranks: int, nregions: int) -> RegionMap | None:
    if nregions <= 1 or nregions > nranks:
        return None
    step = nranks // nregions
    bounds = [i * step for i in range(nregions)] + [nranks]
    return RegionMap(bounds, aligned=False)


@pytest.mark.parametrize("name", sorted(BUILDERS))
@settings(max_examples=60, deadline=None)
@given(nranks=nranks_st, count=counts, seed=seeds, data=st.data())
def test_builder_invariants(name, nranks, count, seed, data):
    builder = BUILDERS[name]
    regions = None
    if name == "regtree":
        regions = _region_map(
            nranks, data.draw(st.integers(1, 4), label="nregions")
        )
    for rank in range(nranks):
        partners = builder(rank, nranks, count, seed=seed, regions=regions)
        assert rank not in partners, f"{name}: self-edge at rank {rank}"
        assert len(partners) == len(set(partners)), f"{name}: duplicates"
        assert all(0 <= p < nranks for p in partners)
        assert len(partners) <= count
        # Deterministic: a second build is byte-for-byte the same.
        assert partners == builder(
            rank, nranks, count, seed=seed, regions=regions
        )


@settings(max_examples=40, deadline=None)
@given(nranks=nranks_st, count=counts)
def test_ring_is_symmetric(nranks, count):
    lists = {r: set(ring_partners(r, nranks, count)) for r in range(nranks)}
    for a in range(nranks):
        for b in lists[a]:
            assert a in lists[b], f"ring: {a} lists {b} but not vice versa"


@settings(max_examples=40, deadline=None)
@given(
    nranks=nranks_st,
    count=st.integers(min_value=4, max_value=8),
    nregions=st.integers(min_value=1, max_value=4),
)
def test_regtree_symmetric_with_full_budget(nranks, count, nregions):
    regions = _region_map(nranks, nregions)
    lists = {
        r: set(regtree_partners(r, nranks, count, regions=regions))
        for r in range(nranks)
    }
    for a in range(nranks):
        for b in lists[a]:
            assert a in lists[b], f"regtree: {a} lists {b} but not back"


@settings(max_examples=40, deadline=None)
@given(nranks=nranks_st, seed=seeds)
def test_hypercube_connects_the_job(nranks, seed):
    """With the full log2 budget every rank reaches every other —
    the percolation property the lifeline scheme relies on."""
    count = max(1, nranks.bit_length())
    reached = {0}
    frontier = [0]
    while frontier:
        r = frontier.pop()
        for p in hypercube_partners(r, nranks, count, seed=seed):
            if p not in reached:
                reached.add(p)
                frontier.append(p)
    assert reached == set(range(nranks))


@settings(max_examples=60, deadline=None)
@given(nranks=nranks_st, count=counts)
def test_lifeline_partners_matches_hypercube(nranks, count):
    """The legacy helper is now a wrapper; it must agree exactly (the
    backward-compatibility contract of the refactor) and keep the
    invariants on non-power-of-two rank counts."""
    for rank in range(nranks):
        legacy = lifeline_partners(rank, nranks, count)
        assert legacy == hypercube_partners(rank, nranks, count)
        assert rank not in legacy
        assert len(legacy) == len(set(legacy))
        assert all(0 <= p < nranks for p in legacy)


def test_registry_resolves_every_builder():
    for name, fn in BUILDERS.items():
        assert graph_by_name(name) is fn


def test_symmetric_graphs_constant_is_honest():
    # Anything the constant claims symmetric must pass the ring check
    # shape; currently that is exactly the ring.
    assert SYMMETRIC_GRAPHS == frozenset({"ring"})


def test_single_rank_has_no_partners():
    for name, fn in BUILDERS.items():
        assert fn(0, 1, 4) == [], name
