"""Unit tests of the StealProtocol state machine via a fake transport.

The protocol object is exercised through the worker (the production
wiring) but with a scripted transport, so each branch — forwarding
relays, terminal denies, visited-set pruning, region-first draws —
is pinned without running a full simulation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.steal_policy import StealOne
from repro.core.victim import UniformRandomSelector
from repro.lifeline.worker import LifelineWorker
from repro.protocol.core import ProtocolPlan, StealProtocol
from repro.protocol.messages import (
    StealForward,
    StealRequest,
    StealResponse,
)
from repro.protocol.regions import RegionMap
from repro.sim.worker import Worker, WorkerStatus
from repro.uts.params import TreeParams
from repro.uts.tree import TreeGenerator

TREE = TreeParams(
    name="sp", tree_type="binomial", root_seed=3, b0=30, m=2, q=0.4
)


class FakeTransport:
    def __init__(self):
        self.sent = []
        self.execs = []
        self.idles = []
        self.work_sends = []

    def send(self, src, dst, payload, when):
        self.sent.append((src, dst, payload, when))

    def schedule_exec(self, rank, when):
        self.execs.append((rank, when))

    def rank_became_idle(self, rank, when):
        self.idles.append((rank, when))

    def work_sent(self, rank):
        self.work_sends.append(rank)

    def local_time(self, rank, true_time):
        return true_time


def make_worker(rank=1, nranks=8, plan=None):
    t = FakeTransport()
    w = Worker(
        rank=rank,
        nranks=nranks,
        generator=TreeGenerator(TREE),
        selector=UniformRandomSelector().make(rank, nranks, seed=0),
        policy=StealOne(),
        transport=t,
        chunk_size=5,
        poll_interval=4,
        per_node_time=1e-6,
        steal_service_time=1e-6,
        plan=plan,
    )
    return w, t


def _of_type(sent, cls):
    return [m for m in sent if isinstance(m[2], cls)]


FWD_PLAN = ProtocolPlan(forward=True, forward_ttl=2)


class TestWorkerSurface:
    """The tentpole's structural guarantee: the execution core holds
    no steal-protocol message handling of its own."""

    def test_worker_has_no_protocol_handlers(self):
        for name in (
            "_on_response",
            "_send_steal_request",
            "_serve_pending",
            "_relay_or_deny",
            "_steal_failed",
            "_quiesce",
            "_disarm",
        ):
            assert name not in vars(Worker), name
            assert name not in vars(LifelineWorker), name

    def test_lifeline_worker_is_a_plan_shim(self):
        # The subclass adds configuration and read-only views, never
        # behaviour: no message or serve overrides remain.
        for name in ("on_message", "on_exec", "start", "run_quanta"):
            assert name not in vars(LifelineWorker), name

    def test_protocol_owns_the_lifecycle(self):
        for name in (
            "on_idle",
            "on_message",
            "serve_pending",
            "_relay_or_deny",
            "_forward_target",
            "_draw_victim",
        ):
            assert name in vars(StealProtocol), name

    def test_pending_is_shared_in_place(self):
        w, _ = make_worker()
        assert w.pending is w.protocol.pending


class TestBaselineDeny:
    def test_idle_rank_denies_without_forwarding(self):
        w, t = make_worker()  # default plan: no forwarding
        w.start(0.0)
        w.on_message(1.0, StealRequest(thief=5))
        denies = _of_type(t.sent, StealResponse)
        assert len(denies) == 1
        _, dst, resp, _ = denies[0]
        assert dst == 5 and not resp.has_work
        assert w.requests_denied == 1
        assert w.requests_forwarded == 0

    def test_running_rank_queues_request(self):
        w, _ = make_worker()
        w.status = WorkerStatus.RUNNING
        w.on_message(1.0, StealRequest(thief=5))
        assert len(w.pending) == 1


class TestForwarding:
    def test_idle_rank_relays_instead_of_denying(self):
        w, t = make_worker(plan=FWD_PLAN)
        w.start(0.0)
        w.on_message(1.0, StealRequest(thief=5))
        fwds = _of_type(t.sent, StealForward)
        assert len(fwds) == 1
        src, dst, msg, _ = fwds[0]
        assert src == 1
        assert msg.thief == 5
        assert msg.ttl == FWD_PLAN.forward_ttl - 1
        assert dst not in (1, 5)  # never back to thief or self
        assert msg.visited == (5, 1, dst)
        assert w.requests_forwarded == 1
        assert w.requests_denied == 0
        assert _of_type(t.sent, StealResponse) == []

    def test_exhausted_ttl_denies_to_originator(self):
        w, t = make_worker(plan=FWD_PLAN)
        w.start(0.0)
        w.on_message(1.0, StealForward(thief=5, escalated=False, ttl=0,
                                       visited=(5, 3, 1)))
        assert _of_type(t.sent, StealForward) == []
        denies = _of_type(t.sent, StealResponse)
        assert len(denies) == 1
        assert denies[0][1] == 5  # terminal deny goes to the originator
        assert w.requests_denied == 1

    def test_fully_visited_chain_denies(self):
        w, t = make_worker(nranks=4, plan=FWD_PLAN)
        w.start(0.0)
        w.on_message(
            1.0,
            StealForward(thief=0, escalated=False, ttl=5,
                         visited=(0, 1, 2, 3)),
        )
        assert _of_type(t.sent, StealForward) == []
        assert [m[1] for m in _of_type(t.sent, StealResponse)] == [0]

    def test_relay_skips_visited_ranks(self):
        w, t = make_worker(nranks=4, plan=FWD_PLAN)
        w.start(0.0)
        w.on_message(
            1.0,
            StealForward(thief=0, escalated=False, ttl=5, visited=(0, 2, 1)),
        )
        fwds = _of_type(t.sent, StealForward)
        assert len(fwds) == 1
        assert fwds[0][1] == 3  # the only unvisited rank

    def test_served_forward_flows_to_originator(self):
        w, t = make_worker(rank=0, plan=FWD_PLAN)
        w.stack.push_batch(
            np.arange(25, dtype=np.uint64), np.full(25, 2, dtype=np.int32)
        )
        w.status = WorkerStatus.RUNNING
        w.on_message(
            1.0,
            StealForward(thief=5, escalated=False, ttl=1, visited=(5, 3, 0)),
        )
        w.on_exec(2.0)
        serves = [
            m for m in _of_type(t.sent, StealResponse) if m[2].has_work
        ]
        assert len(serves) == 1
        assert serves[0][1] == 5  # straight to the thief, not hop 3
        assert serves[0][2].victim == 0
        assert w.forwards_served == 1
        assert w.requests_served == 1
        assert t.work_sends == [0]

    def test_escalation_flag_survives_the_relay(self):
        w, t = make_worker(plan=FWD_PLAN)
        w.start(0.0)
        w.on_message(
            1.0, StealForward(thief=5, escalated=True, ttl=2, visited=(5, 3))
        )
        fwds = _of_type(t.sent, StealForward)
        assert len(fwds) == 1 and fwds[0][2].escalated

    def test_forward_off_plan_never_relays(self):
        w, t = make_worker(plan=ProtocolPlan(forward=False))
        w.start(0.0)
        w.on_message(1.0, StealRequest(thief=5))
        assert _of_type(t.sent, StealForward) == []
        assert w.requests_denied == 1


REGION_PLAN = ProtocolPlan(
    regions=RegionMap([0, 4, 8]), region_attempts=2
)


class TestRegions:
    def test_first_draws_stay_in_region(self):
        w, t = make_worker(rank=1, plan=REGION_PLAN)
        w.start(0.0)  # first request of the session
        reqs = _of_type(t.sent, StealRequest)
        assert len(reqs) == 1
        assert reqs[0][1] in {0, 2, 3}
        # A failed reply triggers the second (still intra-region) draw.
        w.on_message(1.0, StealResponse(victim=reqs[0][1], chunks=None))
        reqs = _of_type(t.sent, StealRequest)
        assert len(reqs) == 2
        assert reqs[1][1] in {0, 2, 3}

    def test_draws_escalate_after_budget(self):
        w, t = make_worker(rank=1, plan=REGION_PLAN)
        w.start(0.0)
        # Burn the intra-region budget, then many more draws: at least
        # one must leave the region (uniform over 7 ranks, 4 outside).
        for i in range(40):
            reqs = _of_type(t.sent, StealRequest)
            w.on_message(float(i + 1),
                         StealResponse(victim=reqs[-1][1], chunks=None))
        targets = {m[1] for m in _of_type(t.sent, StealRequest)[2:]}
        assert targets - {0, 2, 3}, "selector draws never left the region"

    def test_region_first_forward_targets(self):
        plan = ProtocolPlan(
            forward=True, forward_ttl=2, regions=RegionMap([0, 4, 8])
        )
        w, t = make_worker(rank=1, plan=plan)
        w.start(0.0)
        w.on_message(1.0, StealRequest(thief=6))
        fwds = _of_type(t.sent, StealForward)
        assert len(fwds) == 1
        assert fwds[0][1] in {0, 2, 3}  # relay prefers region peers

    def test_session_reset_restores_region_budget(self):
        w, t = make_worker(rank=1, plan=REGION_PLAN)
        w.start(0.0)
        assert w.protocol._session_attempts == 1
        reqs = _of_type(t.sent, StealRequest)
        chunk = _work_chunk()
        w.on_message(1.0, StealResponse(victim=reqs[0][1], chunks=[chunk]))
        assert w.status is WorkerStatus.RUNNING
        assert w.protocol._session_attempts == 0


def _work_chunk():
    from repro.uts.stack import Chunk

    c = Chunk(5)
    c.push(
        np.arange(5, dtype=np.uint64), np.full(5, 2, dtype=np.int32)
    )
    return c


class TestCounters:
    def test_worker_counters_are_protocol_views(self):
        w, _ = make_worker(plan=FWD_PLAN)
        w.protocol.requests_forwarded = 7
        w.protocol.forwards_served = 3
        assert w.requests_forwarded == 7
        assert w.forwards_served == 3

    def test_plain_serve_flag(self):
        w, _ = make_worker(plan=FWD_PLAN)
        assert w._plain_serve  # forwarding adds no spontaneous sends
        w2, _ = make_worker(plan=ProtocolPlan(lifeline_count=2))
        assert not w2._plain_serve  # lifeline pushes are spontaneous


class TestLifelineRaces:
    """A stale lifeline push can wake a thief while its real steal
    request is still in flight; the eventual deny then lands while
    RUNNING.  With lifelines that deny is tolerated (the chain keeps
    hunting, as the pre-refactor LifelineWorker did); without them a
    non-WAITING response stays a protocol violation."""

    def test_deny_while_running_is_tolerated_with_lifelines(self):
        w, t = make_worker(plan=ProtocolPlan(lifeline_count=2))
        w.status = WorkerStatus.RUNNING
        w.protocol.on_message(1.0, StealResponse(victim=3, chunks=None))
        assert w.failed_steals == 1
        assert len(_of_type(t.sent, StealRequest)) == 1  # chain resent

    def test_deny_while_running_raises_without_lifelines(self):
        from repro.errors import SimulationError

        w, _ = make_worker(plan=FWD_PLAN)
        w.status = WorkerStatus.RUNNING
        with pytest.raises(SimulationError, match="while RUNNING"):
            w.protocol.on_message(1.0, StealResponse(victim=3, chunks=None))
