"""The protocol-variant grammar: spec strings <-> config overrides."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core import registry
from repro.core.config import WorkStealingConfig
from repro.errors import RegistryError
from repro.protocol.variants import protocol_overrides, protocol_tag
from repro.uts.params import T3XS


def _config(**kw) -> WorkStealingConfig:
    kw.setdefault("tree", T3XS)
    kw.setdefault("nranks", 16)
    return WorkStealingConfig(**kw)


class TestOverrides:
    @pytest.mark.parametrize(
        "spec,expected",
        [
            ("steal", {}),
            ("forward", {"protocol": "forward"}),
            ("forward[3]", {"protocol": "forward", "forward_ttl": 3}),
            ("regions[8]", {"regions": 8}),
            ("regions[8:4]", {"regions": 8, "region_attempts": 4}),
            ("lifelines[2]", {"lifelines": 2}),
            (
                "lifelines[2:ring]",
                {"lifelines": 2, "lifeline_graph": "ring"},
            ),
            (
                "forward[3]+regions[4]+lifelines[2:regtree]",
                {
                    "protocol": "forward",
                    "forward_ttl": 3,
                    "regions": 4,
                    "lifelines": 2,
                    "lifeline_graph": "regtree",
                },
            ),
        ],
    )
    def test_grammar(self, spec, expected):
        assert protocol_overrides(spec) == expected

    def test_duplicate_key_rejected(self):
        with pytest.raises(RegistryError, match="more than once"):
            protocol_overrides("forward+forward[3]")

    def test_unknown_atom_rejected(self):
        with pytest.raises(RegistryError, match="unknown protocol atom"):
            protocol_overrides("warp[2]")

    def test_empty_spec_rejected(self):
        with pytest.raises(RegistryError):
            protocol_overrides("")

    def test_overrides_build_valid_configs(self):
        spec = "forward[3]+regions[4]+lifelines[2:ring]"
        cfg = _config(**protocol_overrides(spec))
        assert cfg.protocol == "forward"
        assert cfg.forward_ttl == 3
        assert cfg.regions == 4
        assert cfg.lifelines == 2
        assert cfg.lifeline_graph == "ring"


class TestRegistry:
    def test_exact_steal_resolves(self):
        assert registry.resolve("protocol", "steal") == {}

    def test_pattern_resolves(self):
        assert registry.resolve("protocol", "forward[3]+regions[4]") == {
            "protocol": "forward",
            "forward_ttl": 3,
            "regions": 4,
        }

    def test_unknown_name_raises(self):
        with pytest.raises(RegistryError):
            registry.resolve("protocol", "carrier-pigeon")


class TestTag:
    def test_default_is_steal(self):
        assert protocol_tag(_config()) == "steal"

    @pytest.mark.parametrize(
        "kw,tag",
        [
            (dict(protocol="forward"), "fwd2"),
            (dict(protocol="forward", forward_ttl=3), "fwd3"),
            (dict(regions=8), "reg8"),
            (dict(regions=8, region_attempts=4), "reg8:4"),
            (dict(lifelines=2), "ll2"),
            (dict(lifelines=2, lifeline_graph="ring"), "ll2:ring"),
            (
                dict(protocol="forward", regions=4, lifelines=2,
                     lifeline_graph="regtree"),
                "fwd2+reg4+ll2:regtree",
            ),
        ],
    )
    def test_tags(self, kw, tag):
        assert protocol_tag(_config(**kw)) == tag

    def test_label_suffix_only_for_non_default(self):
        assert "+" not in _config().label().split("[")[0]
        assert _config(protocol="forward").label().endswith("+fwd2")

    def test_tag_round_trips_through_overrides(self):
        # tag(config(overrides(spec))) names the same configuration.
        spec = "forward[3]+regions[4:1]+lifelines[2:ring]"
        cfg = _config(**protocol_overrides(spec))
        assert protocol_tag(cfg) == "fwd3+reg4:1+ll2:ring"
        # Inert knob values never leak into the tag.
        assert protocol_tag(replace(cfg, protocol="steal")) == (
            "reg4:1+ll2:ring"
        )
