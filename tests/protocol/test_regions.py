"""RegionMap: the locality geometry of region-first stealing."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.protocol.regions import RegionMap


class TestValidation:
    def test_bounds_must_start_at_zero(self):
        with pytest.raises(ConfigurationError):
            RegionMap([1, 4])

    def test_bounds_must_increase(self):
        with pytest.raises(ConfigurationError):
            RegionMap([0, 4, 4])

    def test_too_short(self):
        with pytest.raises(ConfigurationError):
            RegionMap([0])


class TestGeometry:
    def test_region_of_and_bounds_agree(self):
        m = RegionMap([0, 4, 8, 16])
        assert m.nregions == 3
        assert m.nranks == 16
        for rank in range(16):
            region = m.region_of(rank)
            lo, hi = m.bounds_of(region)
            assert lo <= rank < hi

    def test_peers_are_region_mates(self):
        m = RegionMap([0, 4, 8])
        assert m.peers(1) == [0, 2, 3]
        assert m.peers(4) == [5, 6, 7]

    def test_single_region_peers_everyone(self):
        m = RegionMap([0, 8])
        assert m.peers(3) == [0, 1, 2, 4, 5, 6, 7]

    def test_singleton_region_has_no_peers(self):
        m = RegionMap([0, 1, 4])
        assert m.peers(0) == []


class TestBuild:
    def test_aligned_build_snaps_to_node_blocks(self):
        # 4 ranks per node; 2 regions over 16 ranks cut at rank 8 —
        # a node boundary, so the map reports aligned.
        rank_nodes = np.repeat(np.arange(4), 4)
        m = RegionMap.build(16, 2, rank_nodes)
        assert m.aligned
        assert m.bounds == [0, 8, 16]
        cut = m.bounds[1]
        assert rank_nodes[cut] != rank_nodes[cut - 1]

    def test_interleaved_nodes_not_aligned(self):
        m = RegionMap.build(16, 4, np.array([0, 1] * 8))
        assert not m.aligned
        assert m.nranks == 16


@settings(max_examples=60, deadline=None)
@given(
    nranks=st.integers(min_value=2, max_value=64),
    nregions=st.integers(min_value=1, max_value=8),
    ranks_per_node=st.integers(min_value=1, max_value=8),
)
def test_build_partitions_exactly(nranks, nregions, ranks_per_node):
    rank_nodes = np.arange(nranks) // ranks_per_node
    m = RegionMap.build(nranks, nregions, rank_nodes)
    # Bounds cover [0, nranks) contiguously.
    assert m.bounds[0] == 0 and m.bounds[-1] == nranks
    assert all(a < b for a, b in zip(m.bounds, m.bounds[1:]))
    # peers() is an involution-free partition: every rank's region
    # mates list the rank back.
    for rank in range(nranks):
        for peer in m.peers(rank):
            assert rank in m.peers(peer)
            assert m.region_of(peer) == m.region_of(rank)
