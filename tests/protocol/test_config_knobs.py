"""Protocol config knobs: validation, fingerprint physics, elision.

The four new knobs are *physics* — they participate in fingerprints —
but default values are elided from the hashed payload, so every
fingerprint (and cached result) minted before the knobs existed is
still byte-identical.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core.config import (
    FINGERPRINT_DEFAULT_ELIDED,
    WorkStealingConfig,
)
from repro.errors import ConfigurationError
from repro.exec.fingerprint import config_fingerprint, fingerprint_dict
from repro.uts.params import T3XS


def _config(**kw) -> WorkStealingConfig:
    kw.setdefault("tree", T3XS)
    kw.setdefault("nranks", 16)
    return WorkStealingConfig(**kw)


class TestValidation:
    def test_unknown_protocol_rejected(self):
        with pytest.raises(ConfigurationError):
            _config(protocol="gossip")

    def test_negative_ttl_rejected(self):
        with pytest.raises(ConfigurationError):
            _config(forward_ttl=-1)

    def test_negative_regions_rejected(self):
        with pytest.raises(ConfigurationError):
            _config(regions=-1)

    def test_zero_region_attempts_rejected(self):
        with pytest.raises(ConfigurationError):
            _config(region_attempts=0)

    def test_unknown_lifeline_graph_rejected(self):
        with pytest.raises(ConfigurationError):
            _config(lifeline_graph="torus")

    @pytest.mark.parametrize(
        "kw",
        [
            dict(protocol="forward", forward_ttl=0),
            dict(regions=4, region_attempts=1),
            dict(lifeline_graph="regtree"),
        ],
    )
    def test_valid_corners_accepted(self, kw):
        _config(**kw)


class TestFingerprintStability:
    def test_default_knobs_are_elided(self):
        """The hashed payload of a default config has no protocol keys
        — the backward-compatibility contract with pre-knob caches."""
        cfg = _config()
        data = cfg.to_dict()
        stripped = {
            k: v for k, v in data.items()
            if k not in FINGERPRINT_DEFAULT_ELIDED
        }
        assert fingerprint_dict(stripped) == cfg.fingerprint()

    def test_dict_and_object_fingerprints_agree(self):
        cfg = _config(protocol="forward", regions=4)
        assert config_fingerprint(cfg.to_dict()) == cfg.fingerprint()

    @pytest.mark.parametrize(
        "kw",
        [
            dict(protocol="forward"),
            dict(forward_ttl=3),
            dict(regions=4),
            dict(region_attempts=1),
            dict(lifeline_graph="ring"),
        ],
    )
    def test_non_default_knob_changes_fingerprint(self, kw):
        assert _config(**kw).fingerprint() != _config().fingerprint()

    def test_knobs_round_trip_through_dict(self):
        cfg = _config(
            protocol="forward", forward_ttl=3, regions=4,
            region_attempts=1, lifelines=2, lifeline_graph="ring",
        )
        back = WorkStealingConfig.from_dict(cfg.to_dict())
        assert back.protocol == "forward"
        assert back.forward_ttl == 3
        assert back.regions == 4
        assert back.region_attempts == 1
        assert back.lifeline_graph == "ring"
        assert back.fingerprint() == cfg.fingerprint()

    def test_inert_knob_values_still_distinguish(self):
        # forward_ttl=3 with protocol="steal" is inert physics-wise but
        # fingerprints distinctly: a cache miss, never a wrong hit.
        assert _config(forward_ttl=3).fingerprint() != (
            _config().fingerprint()
        )

    def test_engine_knobs_stay_excluded(self):
        cfg = _config(protocol="forward", regions=4)
        assert (
            replace(cfg, engine="sharded", shards=4).fingerprint()
            == cfg.fingerprint()
        )
