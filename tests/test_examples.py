"""Smoke tests: the example scripts run end to end at reduced scale."""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(os.path.dirname(__file__)), "examples")


def _run(script: str, *args: str) -> str:
    proc = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, script), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_quickstart():
    out = _run("quickstart.py", "8")
    assert "tofu/half" in out
    assert "speedup" in out


def test_scheduling_latency_trace():
    out = _run("scheduling_latency_trace.py", "8")
    assert "Wmax" in out
    assert "SL(x)" in out


def test_topology_placement():
    out = _run("topology_placement.py", "32")
    assert "8RR" in out
    assert "distance-skewed" in out


def test_geometric_workload():
    out = _run("geometric_workload.py", "8")
    assert "GEO_L" in out
    assert "efficiency" in out


@pytest.mark.parametrize(
    "script",
    [
        "quickstart.py",
        "victim_selection_study.py",
        "topology_placement.py",
        "granularity_study.py",
        "scheduling_latency_trace.py",
        "geometric_workload.py",
    ],
)
def test_examples_compile(script):
    path = os.path.join(EXAMPLES, script)
    with open(path) as fh:
        compile(fh.read(), path, "exec")
