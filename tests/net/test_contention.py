"""Tests for the NIC contention model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.net.contention import NicContention


class TestDisabled:
    def test_zero_service_is_noop(self):
        nic = NicContention(np.array([0, 0, 1]), service_time=0.0)
        assert not nic.enabled
        assert nic.inject(0, 5.0) == 5.0
        assert nic.inject(1, 5.0) == 5.0  # same node, same instant: no queueing


class TestEnabled:
    def test_serialises_same_node(self):
        nic = NicContention(np.array([0, 0]), service_time=1.0)
        t1 = nic.inject(0, 10.0)
        t2 = nic.inject(1, 10.0)
        assert t1 == 11.0
        assert t2 == 12.0  # queued behind rank 0's message

    def test_independent_nodes(self):
        nic = NicContention(np.array([0, 1]), service_time=1.0)
        assert nic.inject(0, 10.0) == 11.0
        assert nic.inject(1, 10.0) == 11.0

    def test_idle_port_no_backlog(self):
        nic = NicContention(np.array([0]), service_time=1.0)
        nic.inject(0, 0.0)
        # Long after the port freed: no residual delay.
        assert nic.inject(0, 100.0) == 101.0

    def test_monotone_departures_per_node(self):
        nic = NicContention(np.array([0, 0, 0]), service_time=0.5)
        times = [nic.inject(r, 1.0) for r in (0, 1, 2)]
        assert times == sorted(times)
        assert times[2] == pytest.approx(2.5)

    def test_reset(self):
        nic = NicContention(np.array([0]), service_time=1.0)
        nic.inject(0, 0.0)
        nic.reset()
        assert nic.inject(0, 0.0) == 1.0

    def test_negative_service_rejected(self):
        with pytest.raises(ConfigurationError):
            NicContention(np.array([0]), service_time=-1.0)

    def test_empty_ranks_ok(self):
        nic = NicContention(np.array([], dtype=np.int64), service_time=1.0)
        assert not nic._port_free.size
