"""Tests for latency models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.net.latency import (
    HierarchicalLatency,
    HopLatency,
    KComputerLatency,
    UniformLatency,
)
from repro.net.topology import FlatTopology, TofuTopology, Torus3D

TOFU = TofuTopology((2, 2, 2))
NODES = np.arange(48, dtype=np.int64)

ALL_MODELS = [
    UniformLatency(2e-6),
    HopLatency(),
    HierarchicalLatency(),
    KComputerLatency(),
]


@pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
class TestLatencyContract:
    def test_shape_and_symmetry(self, model):
        m = model.matrix(TOFU, NODES)
        assert m.shape == (48, 48)
        assert np.allclose(m, m.T)

    def test_zero_diagonal(self, model):
        m = model.matrix(TOFU, NODES)
        assert np.all(np.diag(m) == 0.0)

    def test_nonnegative(self, model):
        m = model.matrix(TOFU, NODES)
        assert np.all(m >= 0.0)

    def test_positive_off_diagonal(self, model):
        m = model.matrix(TOFU, NODES)
        off = m[~np.eye(48, dtype=bool)]
        assert np.all(off > 0.0)


class TestUniform:
    def test_constant(self):
        m = UniformLatency(3e-6).matrix(FlatTopology(8), np.arange(8))
        off = m[~np.eye(8, dtype=bool)]
        assert np.all(off == 3e-6)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            UniformLatency(-1.0)


class TestHop:
    def test_scaling_with_hops(self):
        model = HopLatency(base=1e-6, per_hop=1e-7)
        topo = Torus3D((8, 8, 8))
        nodes = np.array([0, 1, 4])  # 1 hop and 4 hops from node 0
        m = model.matrix(topo, nodes)
        assert m[0, 1] == pytest.approx(1e-6 + 1e-7)
        assert m[0, 2] == pytest.approx(1e-6 + 4e-7)

    def test_intra_node_fast_path(self):
        model = HopLatency(base=1e-6, per_hop=1e-7, intra_node=1e-7)
        # Two ranks on the same node: latency = intra_node.
        m = model.matrix(Torus3D((4, 4, 4)), np.array([5, 5, 6]))
        assert m[0, 1] == pytest.approx(1e-7)
        assert m[0, 2] > 1e-6

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            HopLatency(base=-1e-6)


class TestHierarchical:
    def test_level_ordering_enforced(self):
        with pytest.raises(ConfigurationError):
            HierarchicalLatency(intra_node=1e-6, blade=5e-7, cube=1e-6)

    def test_requires_tofu(self):
        with pytest.raises(ConfigurationError):
            HierarchicalLatency().matrix(FlatTopology(4), np.arange(4))

    def test_levels(self):
        model = HierarchicalLatency(
            intra_node=1e-7, blade=2e-7, cube=3e-7, base=1e-6, per_hop=1e-7
        )
        t = TofuTopology((3, 2, 2))
        # Build specific rank placements: two on one node, two on one
        # blade, two in one cube, two across cubes.
        n0 = t.space.id_of(np.array([0, 0, 0, 0, 0, 0]))
        n_blade = t.space.id_of(np.array([0, 0, 0, 1, 0, 0]))  # same blade b=0
        n_cube = t.space.id_of(np.array([0, 0, 0, 0, 1, 0]))  # other blade
        n_far = t.space.id_of(np.array([2, 1, 0, 0, 0, 0]))  # other cube
        m = model.matrix(t, np.array([n0, n0, n_blade, n_cube, n_far]))
        assert m[0, 1] == pytest.approx(1e-7)  # same node
        assert m[0, 2] == pytest.approx(2e-7)  # same blade
        assert m[0, 3] == pytest.approx(3e-7)  # same cube
        # Across cubes: wrap makes (2,1,0) 1+1 hops from (0,0,0).
        assert m[0, 4] == pytest.approx(1e-6 + 2e-7)

    def test_monotone_with_hierarchy(self):
        """Latency never decreases as the hierarchy level widens."""
        model = KComputerLatency()
        assert model.intra_node < model.blade < model.cube < model.base
        m = model.matrix(TOFU, NODES)
        t = TOFU
        blade_lat = [
            m[a, b]
            for a in range(48)
            for b in range(48)
            if a != b and t.same_blade(a, b)
        ]
        cube_lat = [
            m[a, b]
            for a in range(48)
            for b in range(48)
            if not t.same_blade(a, b) and t.same_cube(a, b)
        ]
        cross_lat = [
            m[a, b] for a in range(48) for b in range(48) if not t.same_cube(a, b)
        ]
        assert max(blade_lat) < min(cube_lat) < min(cross_lat)


class TestKComputerCalibration:
    def test_near_far_ratio_significant(self):
        """Far latency must dominate near latency by >2x at 64+ nodes —
        otherwise the paper's mechanism cannot manifest."""
        topo = TofuTopology.for_nodes(128)
        m = KComputerLatency().matrix(topo, np.arange(128))
        off = m[~np.eye(128, dtype=bool)]
        assert off.max() / off.min() > 2.0

    def test_microsecond_scale(self):
        topo = TofuTopology.for_nodes(64)
        m = KComputerLatency().matrix(topo, np.arange(64))
        off = m[~np.eye(64, dtype=bool)]
        assert 1e-7 < off.min() < off.max() < 1e-4
