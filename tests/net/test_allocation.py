"""Tests for process allocations and placement building."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AllocationError, ConfigurationError
from repro.net.allocation import (
    GroupedPacked,
    OnePerNode,
    Placement,
    RandomAllocation,
    RoundRobinPacked,
    allocation_by_name,
    build_placement,
)
from repro.net.latency import UniformLatency
from repro.net.topology import FlatTopology, TofuTopology


class TestOnePerNode:
    def test_identity_mapping(self):
        a = OnePerNode()
        assert a.rank_nodes(5).tolist() == [0, 1, 2, 3, 4]
        assert a.nodes_needed(5) == 5

    def test_bad_nranks(self):
        with pytest.raises(AllocationError):
            OnePerNode().rank_nodes(0)


class TestRoundRobinPacked:
    def test_paper_description(self):
        """Processes i, i+M, i+2M, ... are on the same node."""
        a = RoundRobinPacked(8)
        nodes = a.rank_nodes(64)  # 8 nodes
        assert a.nodes_needed(64) == 8
        for i in range(8):
            assert len(set(nodes[i::8])) == 1

    def test_consecutive_ranks_different_nodes(self):
        nodes = RoundRobinPacked(8).rank_nodes(64)
        assert all(nodes[i] != nodes[i + 1] for i in range(63))

    def test_balanced(self):
        nodes = RoundRobinPacked(4).rank_nodes(32)
        _, counts = np.unique(nodes, return_counts=True)
        assert np.all(counts == 4)

    def test_non_divisible(self):
        a = RoundRobinPacked(8)
        assert a.nodes_needed(10) == 2
        assert a.rank_nodes(10).max() == 1

    def test_bad_per_node(self):
        with pytest.raises(AllocationError):
            RoundRobinPacked(0)


class TestGroupedPacked:
    def test_paper_description(self):
        """First 8 ranks on node 0, next 8 on node 1, ..."""
        nodes = GroupedPacked(8).rank_nodes(64)
        for j in range(8):
            assert set(nodes[8 * j : 8 * j + 8]) == {j}

    def test_consecutive_ranks_mostly_same_node(self):
        nodes = GroupedPacked(8).rank_nodes(64)
        same = sum(nodes[i] == nodes[i + 1] for i in range(63))
        assert same == 63 - 7  # one switch per node boundary

    def test_bad_per_node(self):
        with pytest.raises(AllocationError):
            GroupedPacked(-1)


class TestRandomAllocation:
    def test_deterministic_per_seed(self):
        a = RandomAllocation(per_node=2, seed=7)
        b = RandomAllocation(per_node=2, seed=7)
        assert a.rank_nodes(20).tolist() == b.rank_nodes(20).tolist()

    def test_different_seeds_differ(self):
        a = RandomAllocation(per_node=2, seed=7).rank_nodes(40)
        b = RandomAllocation(per_node=2, seed=8).rank_nodes(40)
        assert a.tolist() != b.tolist()

    def test_balanced(self):
        nodes = RandomAllocation(per_node=4, seed=0).rank_nodes(40)
        _, counts = np.unique(nodes, return_counts=True)
        assert np.all(counts == 4)


class TestRegistry:
    @pytest.mark.parametrize("name", ["1/N", "8RR", "8G", "4RR", "4G"])
    def test_known(self, name):
        assert allocation_by_name(name).name == name

    def test_unknown(self):
        with pytest.raises(ConfigurationError):
            allocation_by_name("16G")


@st.composite
def alloc_and_nranks(draw):
    kind = draw(st.sampled_from(["1/N", "RR", "G", "RAND"]))
    per_node = draw(st.integers(min_value=1, max_value=8))
    nranks = draw(st.integers(min_value=1, max_value=128))
    if kind == "1/N":
        return OnePerNode(), nranks
    if kind == "RR":
        return RoundRobinPacked(per_node), nranks
    if kind == "G":
        return GroupedPacked(per_node), nranks
    return RandomAllocation(per_node, seed=draw(st.integers(0, 100))), nranks


class TestAllocationProperties:
    @given(alloc_and_nranks())
    @settings(max_examples=100, deadline=None)
    def test_every_rank_placed_in_range(self, case):
        alloc, nranks = case
        nodes = alloc.rank_nodes(nranks)
        assert len(nodes) == nranks
        assert nodes.min() >= 0
        assert nodes.max() < alloc.nodes_needed(nranks)

    @given(alloc_and_nranks())
    @settings(max_examples=100, deadline=None)
    def test_load_never_exceeds_per_node(self, case):
        alloc, nranks = case
        per_node = getattr(alloc, "per_node", 1)
        _, counts = np.unique(alloc.rank_nodes(nranks), return_counts=True)
        assert counts.max() <= per_node


class TestBuildPlacement:
    def test_defaults(self):
        p = build_placement(16)
        assert p.nranks == 16
        assert p.allocation_name == "1/N"
        assert p.latency_name == "kcomputer"
        assert p.num_nodes_used == 16

    def test_by_name(self):
        p = build_placement(32, "8G")
        assert p.num_nodes_used == 4

    def test_matrices_consistent(self):
        p = build_placement(24, "8RR")
        assert p.latency.shape == (24, 24)
        assert p.euclidean.shape == (24, 24)
        assert p.hops.shape == (24, 24)
        assert np.allclose(p.latency, p.latency.T)
        # Ranks on the same node are at euclidean distance 0.
        same = p.rank_nodes[:, None] == p.rank_nodes[None, :]
        assert np.all(p.euclidean[same] == 0.0)

    def test_custom_topology_and_latency(self):
        p = build_placement(
            8,
            OnePerNode(),
            latency_model=UniformLatency(1e-6),
            topology_factory=lambda n: FlatTopology(n),
        )
        assert p.latency_name == "uniform"
        off = p.latency[~np.eye(8, dtype=bool)]
        assert np.all(off == 1e-6)

    def test_topology_too_small(self):
        with pytest.raises(AllocationError):
            build_placement(
                100, OnePerNode(), topology_factory=lambda n: FlatTopology(4)
            )

    def test_ranks_on_node(self):
        p = build_placement(16, "8G")
        assert p.ranks_on_node(0).tolist() == list(range(8))
        assert p.ranks_on_node(1).tolist() == list(range(8, 16))

    def test_placement_validation(self):
        with pytest.raises(ConfigurationError):
            Placement(
                nranks=4,
                rank_nodes=np.arange(4),
                topology=FlatTopology(4),
                latency=np.zeros((3, 3)),
                euclidean=np.zeros((4, 4)),
                hops=np.zeros((4, 4), dtype=np.int64),
            )

    def test_8rr_8g_same_nodes_different_numbering(self):
        prr = build_placement(32, "8RR")
        pg = build_placement(32, "8G")
        assert prr.num_nodes_used == pg.num_nodes_used == 4
        assert prr.rank_nodes.tolist() != pg.rank_nodes.tolist()

    def test_distance_numbering_interaction(self):
        """Under 8G, rank i and i+1 are usually co-located; under 8RR
        they never are — the paper's allocation/selector conflict."""
        prr = build_placement(64, "8RR")
        pg = build_placement(64, "8G")
        rr_neighbour_lat = np.mean([prr.latency[i, i + 1] for i in range(63)])
        g_neighbour_lat = np.mean([pg.latency[i, i + 1] for i in range(63)])
        assert g_neighbour_lat < rr_neighbour_lat
