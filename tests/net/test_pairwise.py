"""Tests for the lazy pairwise-metric rows (``repro.net.pairwise``)."""

import tracemalloc

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.net.allocation import allocation_by_name, build_placement
from repro.net.pairwise import DEFAULT_ROW_CACHE, PairwiseMetric


def _counting_metric(n: int, cache_rows: int = DEFAULT_ROW_CACHE):
    """A metric whose rows are ``i + j`` with a call counter on row_fn."""
    calls = []

    def row_fn(i):
        calls.append(i)
        return np.arange(n, dtype=np.float64) + i

    return PairwiseMetric(n, row_fn, name="test", cache_rows=cache_rows), calls


class TestRowAccess:
    def test_row_values(self):
        m, _ = _counting_metric(5)
        assert np.array_equal(m.row(2), np.arange(5) + 2)

    def test_value_scalar(self):
        m, _ = _counting_metric(5)
        assert m.value(1, 3) == 4.0
        assert isinstance(m.value(1, 3), float)

    def test_row_cached(self):
        m, calls = _counting_metric(5)
        m.row(2)
        m.row(2)
        m.row(2)
        assert calls == [2]

    def test_lru_eviction_recomputes(self):
        m, calls = _counting_metric(8, cache_rows=2)
        m.row(0)
        m.row(1)
        m.row(2)  # evicts row 0
        m.row(0)  # must recompute
        assert calls == [0, 1, 2, 0]

    def test_lru_touch_refreshes(self):
        m, calls = _counting_metric(8, cache_rows=2)
        m.row(0)
        m.row(1)
        m.row(0)  # row 0 becomes most-recent
        m.row(2)  # evicts row 1, not row 0
        m.row(0)
        assert calls == [0, 1, 2]

    def test_rows_read_only(self):
        m, _ = _counting_metric(4)
        with pytest.raises(ValueError):
            m.row(1)[0] = 99.0

    def test_getitem_row_is_writable_copy(self):
        m, _ = _counting_metric(4)
        r = m[1]
        r[0] = 99.0  # copies must not raise
        assert m.row(1)[0] != 99.0

    def test_row_out_of_range(self):
        m, _ = _counting_metric(4)
        with pytest.raises(ConfigurationError):
            m.row(4)
        with pytest.raises(ConfigurationError):
            m.row(-1)

    def test_bad_row_shape_rejected(self):
        m = PairwiseMetric(4, lambda i: np.zeros(3), name="bad")
        with pytest.raises(ConfigurationError):
            m.row(0)


class TestDenseEscapeHatch:
    def test_dense_matches_rows(self):
        m, _ = _counting_metric(6)
        dense = m.dense()
        for i in range(6):
            assert np.array_equal(dense[i], np.arange(6) + i)

    def test_dense_counted(self):
        m, _ = _counting_metric(4)
        assert m.dense_calls == 0
        m.dense()
        m.dense()
        assert m.dense_calls == 2
        assert m.materialised

    def test_row_access_never_materialises(self):
        m, _ = _counting_metric(4)
        for i in range(4):
            m.row(i)
            m.value(i, 0)
        assert m.dense_calls == 0
        assert not m.materialised

    def test_getitem_fancy_goes_dense(self):
        m, _ = _counting_metric(4)
        mask = np.array([True, False, True, False])
        sub = m[mask]
        assert sub.shape == (2, 4)
        assert m.dense_calls == 1

    def test_numpy_interop(self):
        m, _ = _counting_metric(4)
        arr = np.asarray(m)
        assert arr.shape == (4, 4)
        assert np.allclose(arr, m.dense())
        assert m.max() == arr.max()
        assert m.min() == arr.min()
        assert m.mean() == pytest.approx(arr.mean())

    def test_from_dense_roundtrip(self):
        matrix = np.arange(9, dtype=np.float64).reshape(3, 3)
        m = PairwiseMetric.from_dense(matrix)
        assert m.materialised
        assert np.array_equal(m.row(1), matrix[1])
        assert m.shape == (3, 3)
        assert len(m) == 3

    def test_from_dense_rejects_non_square(self):
        with pytest.raises(ConfigurationError):
            PairwiseMetric.from_dense(np.zeros((2, 3)))


class TestConstruction:
    def test_rejects_zero_ranks(self):
        with pytest.raises(ConfigurationError):
            PairwiseMetric(0, lambda i: np.zeros(0))

    def test_rejects_zero_cache(self):
        with pytest.raises(ConfigurationError):
            PairwiseMetric(2, lambda i: np.zeros(2), cache_rows=0)


class TestPlacementScale:
    """The PR's memory target: 8192 ranks with no dense N x N."""

    def test_8192_rank_placement_stays_lazy(self):
        tracemalloc.start()
        try:
            placement = build_placement(8192, allocation_by_name("1/N"))
            # Touch the access patterns the simulator actually uses:
            # selector rows, transport point values, finish-broadcast row.
            for i in range(0, 8192, 512):
                placement.latency.row(i)
                placement.euclidean.row(i)
                placement.hops.row(i)
                placement.latency.value(i, (i + 1) % 8192)
            placement.latency.row(0)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()

        for metric in (placement.latency, placement.euclidean, placement.hops):
            assert metric.dense_calls == 0, metric.name
            assert not metric.materialised, metric.name
        # One dense float64 matrix alone would be 512 MiB; the lazy rows
        # plus coordinates should stay far under that.
        assert peak < 150 * 1024 * 1024, f"peak RSS-ish {peak / 2**20:.0f} MiB"
