"""Tests for dilated allocations (paper-scale distances, fewer ranks)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import AllocationError, ConfigurationError
from repro.net.allocation import (
    DilatedAllocation,
    GroupedPacked,
    OnePerNode,
    allocation_by_name,
    build_placement,
)


class TestDilatedAllocation:
    def test_books_dilation_times_nodes(self):
        d = DilatedAllocation(OnePerNode(), 16)
        assert d.nodes_needed(32) == 512

    def test_rank_nodes_strided(self):
        d = DilatedAllocation(OnePerNode(), 4)
        assert d.rank_nodes(5).tolist() == [0, 4, 8, 12, 16]

    def test_grouping_preserved(self):
        d = DilatedAllocation(GroupedPacked(8), 4)
        nodes = d.rank_nodes(16)
        assert set(nodes[:8]) == {0}
        assert set(nodes[8:]) == {4}

    def test_name(self):
        assert DilatedAllocation(OnePerNode(), 16).name == "1/N@x16"

    def test_identity_dilation(self):
        d = DilatedAllocation(OnePerNode(), 1)
        assert d.rank_nodes(8).tolist() == list(range(8))

    def test_bad_dilation(self):
        with pytest.raises(AllocationError):
            DilatedAllocation(OnePerNode(), 0)


class TestNameParsing:
    def test_parse(self):
        a = allocation_by_name("8G@x16")
        assert isinstance(a, DilatedAllocation)
        assert a.dilation == 16
        assert a.base.name == "8G"

    def test_bad_dilation_string(self):
        with pytest.raises(ConfigurationError):
            allocation_by_name("1/N@xfoo")

    def test_unknown_base(self):
        with pytest.raises(ConfigurationError):
            allocation_by_name("zzz@x4")


class TestDilatedPlacement:
    def test_increases_distances(self):
        compact = build_placement(32, "1/N")
        dilated = build_placement(32, "1/N@x8")
        off = ~np.eye(32, dtype=bool)
        assert dilated.euclidean[off].mean() > compact.euclidean[off].mean()
        assert dilated.latency[off].mean() > compact.latency[off].mean()

    def test_colocation_survives_dilation(self):
        p = build_placement(16, "8G@x8")
        assert p.num_nodes_used == 2
        # Ranks 0-7 share one physical node: zero distance.
        assert np.all(p.euclidean[:8, :8] == 0.0)
