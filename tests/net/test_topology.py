"""Tests for topologies (Tofu model in particular)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TopologyError
from repro.net.topology import (
    FatTreeTopology,
    FlatTopology,
    TofuTopology,
    Torus3D,
)

ALL_TOPOLOGIES = [
    TofuTopology((2, 2, 2)),
    Torus3D((3, 3, 3)),
    FlatTopology(20),
    FatTreeTopology(4, 5),
]


@pytest.mark.parametrize("topo", ALL_TOPOLOGIES, ids=lambda t: t.name)
class TestTopologyContract:
    def test_hops_identity(self, topo):
        for node in range(0, topo.num_nodes, 3):
            assert topo.hops(node, node) == 0

    def test_hops_symmetry(self, topo):
        rng = np.random.default_rng(0)
        for _ in range(30):
            a, b = rng.integers(0, topo.num_nodes, 2)
            assert topo.hops(int(a), int(b)) == topo.hops(int(b), int(a))

    def test_hops_positive_off_diagonal(self, topo):
        assert topo.hops(0, 1) > 0

    def test_euclidean_symmetry(self, topo):
        rng = np.random.default_rng(1)
        for _ in range(30):
            a, b = rng.integers(0, topo.num_nodes, 2)
            assert topo.euclidean(int(a), int(b)) == pytest.approx(
                topo.euclidean(int(b), int(a))
            )

    def test_matrix_matches_scalar(self, topo):
        nodes = np.arange(min(topo.num_nodes, 12))
        hm = topo.hops_matrix(nodes)
        em = topo.euclidean_matrix(nodes)
        for i in nodes:
            for j in nodes:
                assert hm[i, j] == topo.hops(int(i), int(j))
                assert em[i, j] == pytest.approx(topo.euclidean(int(i), int(j)))

    def test_out_of_range(self, topo):
        with pytest.raises(TopologyError):
            topo.hops(0, topo.num_nodes)
        with pytest.raises(TopologyError):
            topo.coords(-1)

    def test_coords_all_shape(self, topo):
        coords = topo.coords_all()
        assert coords.shape[0] == topo.num_nodes


class TestTofu:
    def test_node_count(self):
        t = TofuTopology((2, 3, 4))
        assert t.num_nodes == 2 * 3 * 4 * 12

    def test_bad_grid(self):
        with pytest.raises(TopologyError):
            TofuTopology((2, 3))  # type: ignore[arg-type]

    def test_blade_structure(self):
        t = TofuTopology((2, 2, 2))
        # 4 nodes per blade, 3 blades per cube.
        blades: dict = {}
        for node in range(t.num_nodes):
            blades.setdefault(t.blade_of(node), []).append(node)
        assert all(len(v) == t.NODES_PER_BLADE for v in blades.values())
        assert len(blades) == t.num_nodes // 4

    def test_cube_structure(self):
        t = TofuTopology((2, 2, 2))
        cubes: dict = {}
        for node in range(t.num_nodes):
            cubes.setdefault(t.cube_of(node), []).append(node)
        assert all(len(v) == t.NODES_PER_CUBE for v in cubes.values())
        assert len(cubes) == 8

    def test_same_blade_same_cube(self):
        t = TofuTopology((2, 2, 2))
        for a in range(0, t.num_nodes, 7):
            for b in range(0, t.num_nodes, 5):
                if t.same_blade(a, b):
                    assert t.same_cube(a, b)

    def test_torus_wraps_cube_grid(self):
        t = TofuTopology((4, 4, 4))
        # Node 0 is in cube (0,0,0); find a node in cube (3,0,0): wrap
        # distance along x should be 1 cube, not 3.
        n_far = t.space.id_of(np.array([3, 0, 0, 0, 0, 0]))
        assert t.hops(0, n_far) == 1

    def test_in_cube_no_wrap(self):
        t = TofuTopology((2, 2, 2))
        a = t.space.id_of(np.array([0, 0, 0, 0, 0, 0]))
        b = t.space.id_of(np.array([0, 0, 0, 1, 2, 1]))
        assert t.hops(a, b) == 4  # 1 + 2 + 1, no wrap on b

    def test_for_nodes_capacity(self):
        for n in (1, 8, 12, 13, 100, 1024):
            t = TofuTopology.for_nodes(n)
            assert t.num_nodes >= n

    def test_for_nodes_compact(self):
        t = TofuTopology.for_nodes(96)  # 8 cubes
        assert t.cube_grid == (2, 2, 2)

    def test_for_nodes_no_overallocation(self):
        # 86 cubes needed for 1024 nodes: a (4,5,5)=100 box beats (5,5,5).
        t = TofuTopology.for_nodes(1024)
        x, y, z = t.cube_grid
        assert x * y * z < 125

    def test_for_nodes_bad(self):
        with pytest.raises(TopologyError):
            TofuTopology.for_nodes(0)

    def test_rack_of(self):
        t = TofuTopology((16, 2, 2))
        a = t.space.id_of(np.array([0, 0, 0, 0, 0, 0]))
        b = t.space.id_of(np.array([7, 0, 0, 0, 0, 0]))
        c = t.space.id_of(np.array([8, 0, 0, 0, 0, 0]))
        assert t.rack_of(a) == t.rack_of(b)
        assert t.rack_of(a) != t.rack_of(c)


class TestTorus3D:
    def test_wraps(self):
        t = Torus3D((5, 5, 5))
        assert t.hops(0, 4) == 1  # (0,0,0) -> (0,0,4) wraps

    def test_for_nodes(self):
        t = Torus3D.for_nodes(100)
        assert t.num_nodes >= 100
        assert t.dims == (5, 5, 5)

    def test_bad_dims(self):
        with pytest.raises(TopologyError):
            Torus3D((5, 5))  # type: ignore[arg-type]

    def test_for_nodes_bad(self):
        with pytest.raises(TopologyError):
            Torus3D.for_nodes(0)


class TestFlat:
    def test_all_pairs_equidistant(self):
        t = FlatTopology(10)
        d = t.euclidean_matrix(np.arange(10))
        off = d[~np.eye(10, dtype=bool)]
        assert np.all(off == 1.0)

    def test_bad_size(self):
        with pytest.raises(TopologyError):
            FlatTopology(0)


class TestFatTree:
    def test_three_level_distances(self):
        t = FatTreeTopology(3, 4)
        assert t.hops(0, 0) == 0
        assert t.hops(0, 1) == 1  # same group
        assert t.hops(0, 4) == 3  # across groups

    def test_group_of(self):
        t = FatTreeTopology(3, 4)
        assert t.group_of(0) == 0
        assert t.group_of(11) == 2

    def test_bad_params(self):
        with pytest.raises(TopologyError):
            FatTreeTopology(0, 4)


@given(
    st.tuples(
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=1, max_value=3),
    ),
    st.data(),
)
@settings(max_examples=40, deadline=None)
def test_tofu_triangle_inequality(grid, data):
    t = TofuTopology(grid)
    ids = st.integers(min_value=0, max_value=t.num_nodes - 1)
    a, b, c = data.draw(ids), data.draw(ids), data.draw(ids)
    assert t.hops(a, c) <= t.hops(a, b) + t.hops(b, c)
    assert t.euclidean(a, c) <= t.euclidean(a, b) + t.euclidean(b, c) + 1e-9
