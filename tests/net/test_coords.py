"""Tests for the mixed-radix coordinate space."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TopologyError
from repro.net.coords import CoordSpace

DIMS = st.lists(st.integers(min_value=1, max_value=6), min_size=1, max_size=5)


class TestConstruction:
    def test_size(self):
        s = CoordSpace((2, 3, 4))
        assert s.size == 24
        assert s.ndim == 3

    def test_empty_dims(self):
        with pytest.raises(TopologyError):
            CoordSpace(())

    def test_zero_dim(self):
        with pytest.raises(TopologyError):
            CoordSpace((2, 0, 3))

    def test_wraps_length_mismatch(self):
        with pytest.raises(TopologyError):
            CoordSpace((2, 3), wraps=(True,))

    def test_default_no_wrap(self):
        s = CoordSpace((4, 4))
        assert s.wraps == (False, False)


class TestIdCoordsRoundtrip:
    @given(DIMS, st.data())
    @settings(max_examples=100, deadline=None)
    def test_roundtrip(self, dims, data):
        s = CoordSpace(tuple(dims))
        node = data.draw(st.integers(min_value=0, max_value=s.size - 1))
        coords = s.coords_of(node)
        assert s.id_of(coords) == node

    def test_row_major_order(self):
        s = CoordSpace((2, 3))
        assert s.coords_of(0).tolist() == [0, 0]
        assert s.coords_of(1).tolist() == [0, 1]
        assert s.coords_of(3).tolist() == [1, 0]

    def test_coords_of_many(self):
        s = CoordSpace((2, 3))
        all_coords = s.coords_of_many(np.arange(6))
        for node in range(6):
            assert np.array_equal(all_coords[node], s.coords_of(node))

    def test_out_of_range(self):
        s = CoordSpace((2, 2))
        with pytest.raises(TopologyError):
            s.coords_of(4)
        with pytest.raises(TopologyError):
            s.coords_of(-1)
        with pytest.raises(TopologyError):
            s.coords_of_many(np.array([0, 5]))

    def test_id_of_bad_shape(self):
        s = CoordSpace((2, 2))
        with pytest.raises(TopologyError):
            s.id_of(np.array([1]))

    def test_id_of_out_of_range(self):
        s = CoordSpace((2, 2))
        with pytest.raises(TopologyError):
            s.id_of(np.array([0, 2]))


class TestDistances:
    def test_no_wrap_manhattan(self):
        s = CoordSpace((10,))
        assert s.manhattan(np.array([0]), np.array([9])) == 9

    def test_wrap_manhattan(self):
        s = CoordSpace((10,), wraps=(True,))
        assert s.manhattan(np.array([0]), np.array([9])) == 1
        assert s.manhattan(np.array([0]), np.array([5])) == 5

    def test_mixed_wrap(self):
        s = CoordSpace((10, 10), wraps=(True, False))
        d = s.delta(np.array([0, 0]), np.array([9, 9]))
        assert d.tolist() == [1, 9]

    def test_euclidean(self):
        s = CoordSpace((10, 10))
        assert s.euclidean(np.array([0, 0]), np.array([3, 4])) == pytest.approx(5.0)

    def test_euclidean_wrapped(self):
        s = CoordSpace((10, 10), wraps=(True, True))
        assert s.euclidean(np.array([0, 0]), np.array([9, 0])) == pytest.approx(1.0)

    @given(DIMS, st.data())
    @settings(max_examples=100, deadline=None)
    def test_metric_properties(self, dims, data):
        wraps = tuple(
            data.draw(st.booleans(), label=f"wrap{k}") for k in range(len(dims))
        )
        s = CoordSpace(tuple(dims), wraps=wraps)
        ids = st.integers(min_value=0, max_value=s.size - 1)
        a = s.coords_of(data.draw(ids))
        b = s.coords_of(data.draw(ids))
        c = s.coords_of(data.draw(ids))
        # Identity, symmetry, triangle inequality for manhattan.
        assert s.manhattan(a, a) == 0
        assert s.manhattan(a, b) == s.manhattan(b, a)
        assert s.manhattan(a, c) <= s.manhattan(a, b) + s.manhattan(b, c)
        # Euclidean <= Manhattan always.
        assert s.euclidean(a, b) <= s.manhattan(a, b) + 1e-12

    def test_delta_matrix_consistent(self):
        s = CoordSpace((4, 3, 2), wraps=(True, False, True))
        nodes = np.array([0, 5, 11, 17, 23])
        coords = s.coords_of_many(nodes)
        dm = s.delta_matrix(coords)
        for i in range(len(nodes)):
            for j in range(len(nodes)):
                assert np.array_equal(dm[i, j], s.delta(coords[i], coords[j]))
