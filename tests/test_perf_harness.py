"""Smoke tests for the ``repro.perf`` microbenchmark harness."""

import json

from repro.perf import (
    PRE_PR_BASELINE,
    bench_event_throughput,
    bench_placement_scale,
    bench_selector_sampling,
    bench_sharded_throughput,
    bench_tree_generation,
)
from repro.perf.__main__ import main as perf_main
from repro.perf.sharded import main as sharded_main


def test_tree_generation_scenario():
    out = bench_tree_generation(tree="T3XS", max_nodes=2_000)
    assert out["nodes"] >= 2_000 or out["nodes"] > 0
    assert out["nodes_per_sec"] > 0


def test_selector_sampling_scenario():
    out = bench_selector_sampling(nranks=8, draws=500)
    assert set(out["selectors"]) == {"reference", "rand", "tofu"}
    for stats in out["selectors"].values():
        assert stats["draws"] == 500
        assert stats["draws_per_sec"] > 0


def test_event_throughput_scenario():
    out = bench_event_throughput(tree="T3XS", nranks=4, trials=1)
    assert out["events"] > 0
    assert out["nodes"] > 0
    assert out["events_per_sec"] > 0


def test_sharded_throughput_scenario():
    out = bench_sharded_throughput(
        tree="T3XS", nranks=8, shard_counts=(1, 2), trials=1
    )
    assert out["sequential"]["events_per_sec"] > 0
    for row in out["sharded"]:
        # The interleaved baseline ran the identical job.
        assert row["events"] == out["sequential"]["events"]
        assert row["nodes"] == out["sequential"]["nodes"]
        assert row["speedup_vs_sequential"] > 0


def test_sharded_cli_quick_writes_bench4(tmp_path):
    out_path = tmp_path / "bench4.json"
    rc = sharded_main(["--quick", "--out", str(out_path)])
    assert rc == 0
    report = json.loads(out_path.read_text())
    assert report["schema"] == "repro-perf-sharded-v1"
    assert report["headline"]["speedup"] > 0
    assert report["results"][0]["sharded"]


def test_placement_scale_scenario_stays_lazy():
    out = bench_placement_scale(nranks=256, sample_rows=4)
    assert out["dense_calls"] == 0
    assert not out["materialised"]


def test_baseline_record_complete():
    assert PRE_PR_BASELINE["events_per_sec"] > 0
    assert PRE_PR_BASELINE["commit"]


def test_cli_quick_writes_report(tmp_path, monkeypatch):
    out_path = tmp_path / "perf.json"
    rc = perf_main(["--quick", "--trials", "1", "--out", str(out_path)])
    assert rc == 0
    report = json.loads(out_path.read_text())
    assert report["schema"] == "repro-perf-v1"
    assert report["quick"] is True
    assert report["headline"]["events_per_sec"] > 0
    assert (
        report["headline"]["baseline_events_per_sec"]
        == PRE_PR_BASELINE["events_per_sec"]
    )
    assert set(report["results"]) == {
        "tree_generation",
        "selector_sampling",
        "event_throughput",
        "placement_scale",
    }
