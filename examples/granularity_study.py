#!/usr/bin/env python
"""Work-granularity study (the paper's §V-B, Fig 16).

Sweeps the per-node compute cost (the UTS "SHA rounds per node
creation" knob) and reports how the advantage of latency-aware victim
selection over uniform random shrinks as each stolen node carries more
compute time.

Usage::

    python examples/granularity_study.py [nranks]
"""

from __future__ import annotations

import sys

from repro.bench.experiments import CALIBRATION, cached_run, experiment_config
from repro.bench.report import format_series

ROUNDS = (1, 4, 16)


def improvement(selector: str, nranks: int, rounds: int, base_time: float) -> float:
    r = cached_run(
        experiment_config(
            CALIBRATION.large_tree,
            nranks,
            allocation="1/N",
            selector=selector,
            steal_policy="half",
            compute_rounds=rounds,
        )
    )
    return 100.0 * (base_time - r.total_time) / base_time


def main() -> None:
    nranks = int(sys.argv[1]) if len(sys.argv) > 1 else 128

    curves = {"Rand Half": [], "Tofu Half": []}
    for rounds in ROUNDS:
        base = cached_run(
            experiment_config(
                CALIBRATION.large_tree,
                nranks,
                allocation="1/N",
                selector="reference",
                steal_policy="half",
                compute_rounds=rounds,
            )
        ).total_time
        curves["Rand Half"].append(improvement("rand", nranks, rounds, base))
        curves["Tofu Half"].append(improvement("tofu", nranks, rounds, base))

    print(
        format_series(
            f"Runtime improvement over Reference Half (%), x{nranks}, 1/N",
            "SHA rounds",
            ROUNDS,
            curves,
        )
    )
    gap = [
        t - r for t, r in zip(curves["Tofu Half"], curves["Rand Half"])
    ]
    print(
        "\nTofu-over-Rand gap per granularity: "
        + ", ".join(f"{g:+.1f}%" for g in gap)
    )
    print(
        "As each steal carries more compute time, latency-aware selection"
        "\nmatters less — the paper's concluding observation."
    )


if __name__ == "__main__":
    main()
