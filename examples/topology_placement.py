#!/usr/bin/env python
"""Topology and placement study: how rank numbering meets physical
distance.

Reproduces the machinery behind the paper's Fig 8 and its allocation
comparison:

1. build a Tofu-model deployment for a job;
2. show the latency structure each allocation (1/N, 8RR, 8G) induces
   between *consecutive ranks* — the pairs the reference round-robin
   selector steals between;
3. print the distance-skewed victim distribution p(0, x) and how much
   probability mass each strategy puts within 1 hop.

Usage::

    python examples/topology_placement.py [nranks]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.bench.report import format_table, render_ascii_curve
from repro.core.victim import skewed_probabilities
from repro.net.allocation import build_placement


def main() -> None:
    nranks = int(sys.argv[1]) if len(sys.argv) > 1 else 256

    rows = []
    placements = {}
    for alloc in ("1/N", "8RR", "8G"):
        p = build_placement(nranks, alloc)
        placements[alloc] = p
        neighbour_lat = np.array(
            [p.latency[i, i + 1] for i in range(nranks - 1)]
        )
        off_diag = p.latency[~np.eye(nranks, dtype=bool)]
        rows.append(
            [
                alloc,
                p.num_nodes_used,
                neighbour_lat.mean() * 1e6,
                off_diag.mean() * 1e6,
                off_diag.max() * 1e6,
                int(p.hops.max()),
            ]
        )
    print(f"Deployment of {nranks} ranks on the Tofu model:\n")
    print(
        format_table(
            [
                "alloc",
                "nodes",
                "neigh_lat_us",
                "mean_lat_us",
                "max_lat_us",
                "max_hops",
            ],
            rows,
        )
    )
    print(
        "\nUnder 8RR consecutive ranks always sit on different nodes — the"
        "\nreference selector's ring walk pays inter-node latency on every"
        "\nstep, the conflict the paper identifies."
    )

    # The paper's Fig 8: p(0, x) over the 1/N deployment.
    p = placements["1/N"]
    probs = skewed_probabilities(0, p.euclidean[0])
    print("\nSkewed victim distribution p(0, x) (Fig 8):")
    print(render_ascii_curve(probs.tolist(), width=70, height=8))
    uniform = 1.0 / (nranks - 1)
    near = p.hops[0] <= 2
    near[0] = False
    print(
        format_table(
            ["strategy", "P(victim within 2 hops)"],
            [
                ["uniform random", float(near.sum()) * uniform],
                ["distance-skewed", float(probs[near].sum())],
            ],
        )
    )


if __name__ == "__main__":
    main()
