#!/usr/bin/env python
"""The scheduling-latency metric, end to end (the paper's §III).

Runs one traced execution, then walks through everything the metric
offers: the occupancy step function, Wmax, SL/EL at chosen occupancy
levels, clock-skew injection + correction, and the full latency
profile rendered as ASCII curves.

Usage::

    python examples/scheduling_latency_trace.py [nranks]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import T3S, run_uts
from repro.bench.report import format_table, render_ascii_curve


def main() -> None:
    nranks = int(sys.argv[1]) if len(sys.argv) > 1 else 64

    # Clock skew is injected at trace time and corrected in the result,
    # the same pipeline the paper applies to its K Computer traces.
    result = run_uts(
        tree=T3S,
        nranks=nranks,
        selector="reference",
        trace=True,
        clock_skew_std=5e-5,
        seed=1,
    )
    curve = result.occupancy_curve()

    print(result.summary())
    print(
        f"\nWmax = {curve.max_workers}/{nranks} "
        f"({curve.max_occupancy:.0%} peak occupancy), "
        f"time-average occupancy {curve.average_occupancy():.0%}\n"
    )

    rows = []
    for x in (0.10, 0.25, 0.50, 0.75, 0.90):
        sl = curve.starting_latency(x)
        el = curve.ending_latency(x)
        rows.append(
            [
                f"{x:.0%}",
                "unreached" if sl is None else f"{sl:.2%}",
                "unreached" if el is None else f"{el:.2%}",
            ]
        )
    print(format_table(["occupancy", "SL(x)", "EL(x)"], rows))

    profile = result.latency_profile(np.arange(0.02, 1.0, 0.02))
    print("\nSL(x) over the occupancy grid:")
    print(render_ascii_curve(profile.starting.tolist(), width=64, height=8))
    print("\nEL(x) over the occupancy grid:")
    print(render_ascii_curve(profile.ending.tolist(), width=64, height=8))
    print(
        "\nReading: SL(x) is when occupancy x was first reached (fraction"
        "\nof the runtime); EL(x) is how far from the end it was last held."
    )


if __name__ == "__main__":
    main()
