#!/usr/bin/env python
"""Quickstart: run UTS under distributed work stealing and compare
the paper's three victim-selection strategies.

Usage::

    python examples/quickstart.py [nranks]

Runs the same unbalanced tree with the reference (deterministic round
robin), uniform random, and distance-skewed ("Tofu") victim selectors,
with and without steal-half, and prints the paper's headline metrics
for each.
"""

from __future__ import annotations

import sys

from repro import T3S, run_uts
from repro.bench.report import format_table


def main() -> None:
    nranks = int(sys.argv[1]) if len(sys.argv) > 1 else 64

    print(f"Tree T3S, {nranks} simulated MPI ranks, 1 process/node\n")
    rows = []
    for selector, policy in [
        ("reference", "one"),
        ("rand", "one"),
        ("tofu", "one"),
        ("rand", "half"),
        ("tofu", "half"),
    ]:
        result = run_uts(
            tree=T3S,
            nranks=nranks,
            allocation="1/N",
            selector=selector,
            steal_policy=policy,
        )
        rows.append(
            [
                f"{selector}/{policy}",
                result.total_time * 1e3,
                result.speedup,
                result.efficiency,
                result.failed_steals,
                result.successful_steals,
            ]
        )

    print(
        format_table(
            ["strategy", "runtime_ms", "speedup", "efficiency", "failed", "stolen"],
            rows,
        )
    )
    print(
        f"\nEvery run traverses the exact same tree ({result.total_nodes} "
        "nodes) — UTS trees are a pure function of their parameters, so "
        "strategies are directly comparable."
    )


if __name__ == "__main__":
    main()
