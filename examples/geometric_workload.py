#!/usr/bin/env python
"""Beyond the paper: victim selection on a *geometric* UTS tree.

The paper evaluates binomial trees — deep, spindly, imbalance from
heavy-tailed subtree sizes. The UTS GEO family is the opposite regime:
shallow (depth ~ gen_mx) and wide, with imbalance from variable
branching. This example repeats the strategy comparison on GEO_L
(~1.3e5 nodes, depth 9) to see which conclusions carry over.

Expected outcome: with abundant width and a short critical path, work
spreads almost instantly — every strategy is close to ideal, and
victim selection matters far less than on the binomial trees. That is
itself a paper-consistent result: the latency effects need scarcity.

Usage::

    python examples/geometric_workload.py [nranks]
"""

from __future__ import annotations

import sys

from repro import run_uts, tree_by_name
from repro.bench.report import format_table


def main() -> None:
    nranks = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    tree = tree_by_name("GEO_L")

    rows = []
    for selector, policy in [
        ("reference", "one"),
        ("rand", "one"),
        ("tofu", "half"),
    ]:
        result = run_uts(
            tree=tree,
            nranks=nranks,
            allocation="1/N",
            selector=selector,
            steal_policy=policy,
            trace=True,
        )
        curve = result.occupancy_curve()
        rows.append(
            [
                f"{selector}/{policy}",
                result.total_time * 1e3,
                result.efficiency,
                curve.max_occupancy,
                result.failed_steals,
            ]
        )

    print(f"GEO_L (geometric, shallow/wide), {nranks} ranks:\n")
    print(
        format_table(
            ["strategy", "runtime_ms", "efficiency", "max_occ", "failed"],
            rows,
        )
    )
    spread = max(r[1] for r in rows) / min(r[1] for r in rows)
    print(
        f"\nRuntime spread across strategies: {spread:.2f}x — on a wide,"
        "\nshallow tree, work is everywhere and victim selection barely"
        "\nmatters; the paper's effects need the deep binomial scarcity."
    )


if __name__ == "__main__":
    main()
