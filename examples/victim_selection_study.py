#!/usr/bin/env python
"""Victim-selection case study: reproduce the paper's core comparison.

A condensed version of the paper's evaluation pipeline:

1. sweep the large-scale rank ladder for the reference, random and
   distance-skewed selectors (with steal-half for the optimised one);
2. print the speedup series (Figs 3/6/9/11 in one table);
3. trace the top-scale reference and optimised runs and print their
   starting/ending scheduling latencies (Figs 12/13);
4. print search-time and failed-steal columns (Figs 14/15).

Usage::

    python examples/victim_selection_study.py [--quick]

``--quick`` restricts the ladder to 64/128 ranks (~30 s instead of a
few minutes).
"""

from __future__ import annotations

import sys

import numpy as np

from repro.bench.experiments import CALIBRATION, cached_run, experiment_config
from repro.bench.report import format_series, format_table, render_ascii_curve

STRATEGIES = [
    ("Reference", "reference", "one"),
    ("Rand", "rand", "one"),
    ("Tofu", "tofu", "one"),
    ("Tofu Half", "tofu", "half"),
]


def main() -> None:
    quick = "--quick" in sys.argv
    ladder = (64, 128) if quick else (64, 128, 256, 512)
    tree = CALIBRATION.large_tree

    # 1-2. Speedups across the ladder.
    results = {}
    curves = {}
    for label, selector, policy in STRATEGIES:
        series = []
        for nranks in ladder:
            r = cached_run(
                experiment_config(
                    tree, nranks, allocation="1/N",
                    selector=selector, steal_policy=policy, trace=True,
                )
            )
            results[(label, nranks)] = r
            series.append(r.speedup)
        curves[label] = series
    print(format_series("Speedup, 1/N allocation", "nranks", ladder, curves))

    # 3. Scheduling latencies at the top scale.
    top = ladder[-1]
    grid = np.arange(0.05, 1.001, 0.05)
    print("\nScheduling latencies at x%d (fraction of runtime):" % top)
    for label in ("Reference", "Tofu Half"):
        profile = results[(label, top)].latency_profile(grid)
        print(f"\n  {label}: max occupancy {profile.max_occupancy:.0%}")
        print("  SL(x):")
        print(
            "\n".join(
                "  " + line
                for line in render_ascii_curve(
                    profile.starting.tolist(), width=50, height=6
                ).splitlines()
            )
        )

    # 4. Search time and failed steals.
    rows = []
    for label, *_ in STRATEGIES:
        r = results[(label, top)]
        rows.append(
            [label, r.mean_search_time * 1e3, r.failed_steals,
             r.mean_session_duration * 1e6, r.sessions.sessions_per_rank]
        )
    print("\n" + format_table(
        ["strategy", "search_ms", "failed", "session_us", "sessions/rank"],
        rows,
    ))


if __name__ == "__main__":
    main()
