"""Ablation: chunk size (the steal granularity).

The paper fixes 20 nodes/chunk, citing Olivier et al. that chunking is
a significant win; this sweep verifies the choice sits on the flat part
of the curve: tiny chunks pay steal overhead per handful of nodes,
huge chunks strangle work availability (the private-chunk rule locks
more work away).
"""

from __future__ import annotations

from repro.bench.experiments import CALIBRATION, cached_run, experiment_config
from repro.bench.report import format_series, save_artifact

CHUNKS = (2, 5, 20, 50, 100)
NRANKS = 128


def _series():
    speedups = []
    for chunk in CHUNKS:
        r = cached_run(
            experiment_config(
                CALIBRATION.large_tree,
                NRANKS,
                allocation="1/N",
                selector="tofu",
                steal_policy="half",
                chunk_size=chunk,
                trace=True,
            )
        )
        speedups.append(r.speedup)
    return speedups


def test_ablation_chunk_size(once):
    speedups = once(_series)
    print(
        format_series(
            f"Ablation: chunk size (x{NRANKS}, tofu/half, 1/N)",
            "chunk",
            CHUNKS,
            {"speedup": speedups},
        )
    )
    save_artifact("ablation_chunk", {"chunk": list(CHUNKS), "speedup": speedups})

    by_chunk = dict(zip(CHUNKS, speedups))
    # The paper's 20 is within 30% of the best of the sweep.
    assert by_chunk[20] > max(speedups) * 0.7
    # The extreme ends are not better than the default.
    assert by_chunk[20] >= by_chunk[100] * 0.9
