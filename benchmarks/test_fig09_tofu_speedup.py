"""Fig 9: speedup with the distance-skewed ("Tofu") victim selection.

Paper: "the performance of our benchmark is improved by this new
victim selection strategy ... all allocations strategies perform
better than with the classical random selection for the same
allocation".
"""

from __future__ import annotations

from repro.bench.experiments import LARGE_LADDER
from repro.bench.report import format_series, save_artifact

from benchmarks._shared import ALLOCATIONS, large_sweep, speedups


def _series():
    curves = speedups(large_sweep("tofu", "one"), label="Tofu")
    rand = speedups(
        large_sweep("rand", "one"), allocations=("1/N", "8G"), label="Rand"
    )
    curves.update(rand)
    return curves


def test_fig09_tofu_speedup(once):
    curves = once(_series)
    print(
        format_series(
            "Fig 9: speedup, skewed (Tofu) selection vs random",
            "nranks",
            LARGE_LADDER,
            curves,
        )
    )
    save_artifact("fig09", {"x": list(LARGE_LADDER), "curves": curves})

    # Paper shape: tofu beats rand for the same allocation at top scale.
    assert curves["Tofu 1/N"][-1] > curves["Rand 1/N"][-1]
    assert curves["Tofu 8G"][-1] >= curves["Rand 8G"][-1] * 0.95
    # Tofu 1/N scales into the ladder (peak at or above its start);
    # sustained scaling to the top needs steal-half (Fig 11).
    assert max(curves["Tofu 1/N"]) >= curves["Tofu 1/N"][0]
