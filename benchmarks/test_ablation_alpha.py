"""Ablation: the distance-weight exponent ``alpha`` in ``1/e(i,j)^alpha``.

The paper fixes ``alpha = 1``; this sweep checks how sensitive the
result is: ``alpha = 0`` must coincide with uniform random (the same
distribution), and moderate skews should not be catastrophically worse
than the paper's choice.
"""

from __future__ import annotations

from repro.bench.experiments import CALIBRATION, cached_run, experiment_config
from repro.bench.report import format_series, save_artifact

ALPHAS = (0.0, 0.5, 1.0, 2.0, 4.0)
NRANKS = 256


def _series():
    speedups = []
    for alpha in ALPHAS:
        r = cached_run(
            experiment_config(
                CALIBRATION.large_tree,
                NRANKS,
                allocation="1/N",
                selector=f"skew[{alpha}]",
                steal_policy="half",
                trace=True,
            )
        )
        speedups.append(r.speedup)
    rand = cached_run(
        experiment_config(
            CALIBRATION.large_tree,
            NRANKS,
            allocation="1/N",
            selector="rand",
            steal_policy="half",
            trace=True,
        )
    )
    return speedups, rand.speedup


def test_ablation_skew_exponent(once):
    speedups, rand_speedup = once(_series)
    print(
        format_series(
            f"Ablation: skew exponent alpha (x{NRANKS}, 1/N, steal-half)",
            "alpha",
            ALPHAS,
            {"speedup": speedups, "rand": [rand_speedup] * len(ALPHAS)},
        )
    )
    save_artifact(
        "ablation_alpha",
        {"alpha": list(ALPHAS), "speedup": speedups, "rand": rand_speedup},
    )

    # alpha = 0 is the uniform distribution: parity with rand expected
    # (different RNG stream -> small noise band).
    assert abs(speedups[0] - rand_speedup) / rand_speedup < 0.25
    # The paper's alpha = 1 beats the uniform end of the sweep.
    assert speedups[2] > speedups[0]
