"""Shared sweeps for the large-scale figures.

Figs 3, 6, 7, 9, 10, 11, 14 and 15 all draw on the same underlying
runs; these helpers route everything through the memo cache so each
simulation happens once per pytest session.
"""

from __future__ import annotations

from repro.bench.experiments import CALIBRATION, LARGE_LADDER, cached_run, experiment_config
from repro.bench.sweep import sweep
from repro.ws.results import RunResult

ALLOCATIONS = ("1/N", "8RR", "8G")

#: The scale standing in for the paper's 8192-process runs.
TOP = LARGE_LADDER[-1]


def large_sweep(
    selector: str,
    steal_policy: str = "one",
    allocations=ALLOCATIONS,
) -> dict[tuple[int, str], RunResult]:
    return sweep(
        CALIBRATION.large_tree,
        LARGE_LADDER,
        allocations=allocations,
        selector=selector,
        steal_policy=steal_policy,
        trace=True,
    )


def top_run(selector: str, steal_policy: str = "one", allocation: str = "1/N") -> RunResult:
    """The top-of-ladder run for one strategy (Figs 4/5/12/13 traces)."""
    return cached_run(
        experiment_config(
            CALIBRATION.large_tree,
            TOP,
            allocation=allocation,
            selector=selector,
            steal_policy=steal_policy,
            trace=True,
        )
    )


def speedups(res, allocations=ALLOCATIONS, label: str = "") -> dict[str, list[float]]:
    return {
        f"{label} {a}".strip(): [res[(n, a)].speedup for n in LARGE_LADDER]
        for a in allocations
    }
