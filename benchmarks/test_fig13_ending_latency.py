"""Fig 13: ending latencies, reference vs optimised (Tofu Half).

Paper: "the optimized version maintains a high occupancy until late in
the execution."  At the reproduction's largest in-regime scale (256
ranks, see EXPERIMENTS.md) the optimised version sustains occupancy
levels the reference never reaches at all — its EL curve extends to
~90% occupancy while the reference's stops below 50%.
"""

from __future__ import annotations

import numpy as np

from repro.bench.experiments import CALIBRATION, LARGE_LADDER, cached_run, experiment_config
from repro.bench.report import format_series, save_artifact

GRID = np.arange(0.05, 1.001, 0.05)
SCALE = LARGE_LADDER[-2]


def _profiles():
    ref = cached_run(
        experiment_config(
            CALIBRATION.large_tree, SCALE, allocation="1/N",
            selector="reference", steal_policy="one", trace=True,
        )
    ).latency_profile(GRID)
    opt = cached_run(
        experiment_config(
            CALIBRATION.large_tree, SCALE, allocation="1/N",
            selector="tofu", steal_policy="half", trace=True,
        )
    ).latency_profile(GRID)
    return ref, opt


def test_fig13_ending_latency_comparison(once):
    ref, opt = once(_profiles)
    curves = {
        "Reference EL": ref.ending.tolist(),
        "Tofu Half EL": opt.ending.tolist(),
    }
    print(
        format_series(
            f"Fig 13: ending latency, reference vs Tofu Half (x{SCALE}, 1/N)",
            "occupancy",
            [round(float(x), 2) for x in GRID],
            curves,
        )
    )
    save_artifact(
        "fig13",
        {
            "occupancy": GRID.tolist(),
            **curves,
            "ref_max_occupancy": ref.max_occupancy,
            "opt_max_occupancy": opt.max_occupancy,
        },
    )

    # Paper shape: the optimised version sustains occupancy levels the
    # reference never reaches at all.
    ref_reached = GRID[~np.isnan(ref.ending)]
    opt_reached = GRID[~np.isnan(opt.ending)]
    assert opt_reached.max() > ref_reached.max() + 0.2
    assert opt.max_occupancy > ref.max_occupancy + 0.2
    # Valid fractions everywhere.
    for series in (ref.ending, opt.ending):
        vals = series[~np.isnan(series)]
        assert np.all((vals >= 0.0) & (vals <= 1.0))
