"""Fig 12: starting latencies, reference vs optimised (Tofu Half).

Paper (8192 ranks, 1/N): "while the reference implementation is
struggling to provide work to most processes during the whole
execution, the optimized version achieves a higher occupancy
significantly faster."
"""

from __future__ import annotations

import numpy as np

from repro.bench.report import format_series, save_artifact

from benchmarks._shared import top_run

GRID = np.arange(0.05, 1.001, 0.05)


def _profiles():
    ref = top_run("reference", "one").latency_profile(GRID)
    opt = top_run("tofu", "half").latency_profile(GRID)
    return ref, opt


def test_fig12_starting_latency_comparison(once):
    ref, opt = once(_profiles)
    curves = {
        "Reference SL": ref.starting.tolist(),
        "Tofu Half SL": opt.starting.tolist(),
    }
    print(
        format_series(
            "Fig 12: starting latency, reference vs Tofu Half (top scale, 1/N)",
            "occupancy",
            [round(float(x), 2) for x in GRID],
            curves,
        )
    )
    save_artifact(
        "fig12",
        {
            "occupancy": GRID.tolist(),
            **curves,
            "ref_max_occupancy": ref.max_occupancy,
            "opt_max_occupancy": opt.max_occupancy,
        },
    )

    # Paper shape: the optimised version reaches at least the same
    # occupancy, and reaches mid occupancies no later.
    assert opt.max_occupancy >= ref.max_occupancy * 0.95
    both = ~(np.isnan(ref.starting) | np.isnan(opt.starting))
    mid = both & (GRID >= 0.3) & (GRID <= 0.7)
    if mid.any():
        assert np.nanmean(opt.starting[mid]) <= np.nanmean(ref.starting[mid]) * 1.2
