"""Fig 3: speedup of the reference implementation at large scale.

Paper: 1024—8192 processes on T3WL; the reference "does not scale past
2048 nodes" and "allocating successive ranks to different compute
nodes [8RR] results in the worse performance observed".  Scaled
stand-in: 64—512 ranks on T3L.
"""

from __future__ import annotations

from repro.bench.experiments import LARGE_LADDER
from repro.bench.report import format_series, save_artifact

from benchmarks._shared import large_sweep, speedups


def _series():
    return speedups(large_sweep("reference", "one"), label="Reference")


def test_fig03_reference_large_speedup(once):
    curves = once(_series)
    print(
        format_series(
            "Fig 3: speedup, reference selector, large scale",
            "nranks",
            LARGE_LADDER,
            curves,
        )
    )
    save_artifact("fig03", {"x": list(LARGE_LADDER), "curves": curves})

    one_n = curves["Reference 1/N"]
    rr = curves["Reference 8RR"]
    g = curves["Reference 8G"]
    # Paper shape 1: scaling saturates — the top-of-ladder gain over the
    # previous scale is far below the ideal 2x.
    assert one_n[-1] < one_n[-2] * 1.5
    # Paper shape 2: 8RR (consecutive ranks on different nodes, in
    # conflict with the ring walk) is the worst allocation at scale.
    assert rr[-1] <= g[-1]
    assert rr[-1] <= one_n[-1]
