"""Table I: UTS input tree parameters and realised sizes.

The paper's trees (T3XXL, T3WL) are reported with their published
parameters and sizes; the scaled stand-ins are traversed and their
realised size/depth measured — these are the rows every other
experiment builds on.
"""

from __future__ import annotations

from repro.bench.report import format_table, save_artifact
from repro.uts.params import T3L, T3M, T3S, T3WL, T3XS, T3XXL
from repro.uts.sequential import sequential_count

PAPER_TREES = (T3XXL, T3WL)
SCALED_TREES = (T3XS, T3S, T3M, T3L)


def _rows():
    rows = []
    for t in PAPER_TREES:
        rows.append(
            [t.name, t.tree_type, t.root_seed, t.b0, t.m, t.q,
             int(t.expected_size), "(paper)", "-"]
        )
    for t in SCALED_TREES:
        seq = sequential_count(t)
        rows.append(
            [t.name, t.tree_type, t.root_seed, t.b0, t.m, t.q,
             seq.total_nodes, "(measured)", seq.max_depth]
        )
    return rows


def test_table1_tree_parameters(once):
    rows = once(_rows)
    print(
        format_table(
            ["Name", "Type", "r", "b0", "m", "q", "Size", "src", "Depth"],
            rows,
        )
    )
    save_artifact(
        "table1",
        {
            "headers": ["name", "type", "r", "b0", "m", "q", "size", "src", "depth"],
            "rows": rows,
        },
    )
    # Paper rows are verbatim Table I.
    assert rows[0][:7] == ["T3XXL", "binomial", 316, 2000, 2, 0.499995, 2793220501]
    assert rows[1][:7] == ["T3WL", "binomial", 559, 2000, 2, 0.4999995, 157063495159]
    # Scaled trees are deterministic: sizes are pinned.
    measured = {r[0]: r[6] for r in rows[2:]}
    assert measured["T3XS"] == 4427
    assert measured["T3M"] == 294183
    # All scaled trees realised within 5x of analytic expectation.
    for t in SCALED_TREES:
        assert measured[t.name] > t.analytic_expected_size / 5
        assert measured[t.name] < t.analytic_expected_size * 5
