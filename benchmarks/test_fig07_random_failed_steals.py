"""Fig 7: number of failed steals, random vs reference selection.

Paper: "the number of failed steals decreases significantly by using a
random victim selection strategy" (for the 1/N allocation).
"""

from __future__ import annotations

from repro.bench.experiments import LARGE_LADDER
from repro.bench.report import format_series, save_artifact

from benchmarks._shared import ALLOCATIONS, large_sweep


def _series():
    rand = large_sweep("rand", "one")
    ref = large_sweep("reference", "one", allocations=("1/N",))
    curves = {
        "Reference 1/N": [ref[(n, "1/N")].failed_steals for n in LARGE_LADDER]
    }
    for a in ALLOCATIONS:
        curves[f"Rand {a}"] = [rand[(n, a)].failed_steals for n in LARGE_LADDER]
    return curves


def test_fig07_failed_steals(once):
    curves = once(_series)
    print(
        format_series(
            "Fig 7: failed steals, random selection vs reference",
            "nranks",
            LARGE_LADDER,
            curves,
        )
    )
    save_artifact("fig07", {"x": list(LARGE_LADDER), "curves": curves})

    # Failed steals grow with scale for every strategy (paper Fig 7's
    # x-trend), and the counts are substantial at the top scale.
    for name, series in curves.items():
        assert series[-1] > series[0], name
    assert curves["Reference 1/N"][-1] > 10_000
