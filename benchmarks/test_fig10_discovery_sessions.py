"""Fig 10: average duration of a work-discovery session.

Paper: "A work discovery session starts when a process exhaust its
work and ends with either work in the queue or application
termination ... the topology-specific victim selection strategy
results in much faster work discovery."
"""

from __future__ import annotations

from repro.bench.experiments import LARGE_LADDER
from repro.bench.report import format_series, save_artifact

from benchmarks._shared import ALLOCATIONS, large_sweep


def _series():
    tofu = large_sweep("tofu", "one")
    rand = large_sweep("rand", "one", allocations=("1/N",))
    ref = large_sweep("reference", "one", allocations=("1/N",))
    curves = {
        "Reference 1/N": [
            ref[(n, "1/N")].mean_session_duration * 1e3 for n in LARGE_LADDER
        ],
        "Rand 1/N": [
            rand[(n, "1/N")].mean_session_duration * 1e3 for n in LARGE_LADDER
        ],
    }
    for a in ALLOCATIONS:
        curves[f"Tofu {a}"] = [
            tofu[(n, a)].mean_session_duration * 1e3 for n in LARGE_LADDER
        ]
    return curves


def test_fig10_work_discovery_sessions(once):
    curves = once(_series)
    print(
        format_series(
            "Fig 10: average work-discovery session duration (ms)",
            "nranks",
            LARGE_LADDER,
            curves,
        )
    )
    save_artifact("fig10", {"x": list(LARGE_LADDER), "curves": curves})

    # Paper shape: skewed selection finds work faster than uniform
    # random at the same (1/N) allocation, at the top scale.
    assert curves["Tofu 1/N"][-1] < curves["Rand 1/N"][-1]
    # Sessions are sub-runtime sane values (ms-scale here).
    for series in curves.values():
        assert all(0.0 <= v < 1e3 for v in series)
