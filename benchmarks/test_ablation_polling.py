"""Ablation: polling interval (nodes expanded between message polls).

The reference MPI code polls every node or two; coarser polling delays
steal responses (the victim answers only at poll boundaries).  The
sweep quantifies that trade-off.
"""

from __future__ import annotations

from repro.bench.experiments import CALIBRATION, cached_run, experiment_config
from repro.bench.report import format_series, save_artifact

POLLS = (1, 2, 5, 10, 50)
NRANKS = 128


def _series():
    speedups = []
    responsiveness = []
    for poll in POLLS:
        r = cached_run(
            experiment_config(
                CALIBRATION.large_tree,
                NRANKS,
                allocation="1/N",
                selector="tofu",
                steal_policy="half",
                poll_interval=poll,
                trace=True,
            )
        )
        speedups.append(r.speedup)
        responsiveness.append(r.mean_session_duration * 1e6)
    return speedups, responsiveness


def test_ablation_poll_interval(once):
    speedups, sessions = once(_series)
    print(
        format_series(
            f"Ablation: poll interval (x{NRANKS}, tofu/half, 1/N)",
            "poll",
            POLLS,
            {"speedup": speedups, "session_us": sessions},
        )
    )
    save_artifact(
        "ablation_poll",
        {"poll": list(POLLS), "speedup": speedups, "session_us": sessions},
    )

    # Very coarse polling hurts: 50-node polls are worse than 1-2.
    assert max(speedups[:2]) > speedups[-1] * 0.95
    # Sessions lengthen when victims poll rarely.
    assert sessions[-1] > sessions[0] * 0.8
