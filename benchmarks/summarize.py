#!/usr/bin/env python
"""Render the measured benchmark artifacts as markdown tables.

Used to refresh the measured columns of EXPERIMENTS.md:

    python benchmarks/summarize.py > /tmp/experiments_measured.md
"""

from __future__ import annotations

import json
import os
import sys

ARTIFACTS = os.path.join(os.path.dirname(os.path.abspath(__file__)), "_artifacts")


def _fmt(v) -> str:
    if isinstance(v, float):
        return f"{v:.3g}"
    return str(v)


def render_curves(name: str, payload: dict, x_key: str) -> str:
    xs = payload[x_key]
    curves = payload["curves"]
    if len(xs) > 40:  # downsample long series (e.g. Fig 8's 1024 ranks)
        step = len(xs) // 20
        idx = list(range(0, len(xs), step))
        xs = [xs[i] for i in idx]
        curves = {k: [v[i] for i in idx] for k, v in curves.items()}
    lines = [f"### {name}", ""]
    header = f"| {x_key} | " + " | ".join(curves) + " |"
    sep = "|" + "---|" * (len(curves) + 1)
    lines += [header, sep]
    for i, x in enumerate(xs):
        row = [_fmt(x)] + [_fmt(curves[c][i]) for c in curves]
        lines.append("| " + " | ".join(row) + " |")
    lines.append("")
    return "\n".join(lines)


def render_rows(name: str, payload: dict) -> str:
    rows = payload["rows"]
    headers = payload.get("headers") or [f"c{i}" for i in range(len(rows[0]))]
    lines = [f"### {name}", ""]
    lines.append("| " + " | ".join(str(h) for h in headers) + " |")
    lines.append("|" + "---|" * len(headers))
    for row in rows:
        lines.append("| " + " | ".join(_fmt(v) for v in row) + " |")
    lines.append("")
    return "\n".join(lines)


def main() -> None:
    if not os.path.isdir(ARTIFACTS):
        sys.exit(f"no artifacts at {ARTIFACTS}; run pytest benchmarks/ first")
    for fname in sorted(os.listdir(ARTIFACTS)):
        if not fname.endswith(".json"):
            continue
        with open(os.path.join(ARTIFACTS, fname)) as fh:
            payload = json.load(fh)
        name = fname[:-5]
        if "rows" in payload:
            print(render_rows(name, payload))
            continue
        x_key = next(
            (k for k in ("x", "occupancy", "rounds", "alpha", "chunk", "poll", "rank") if k in payload),
            None,
        )
        if x_key is None:
            print(f"### {name}\n\n```json\n{json.dumps(payload)[:500]}\n```\n")
            continue
        if "curves" not in payload:
            # Figs 4/5/12/13 style: every other list-valued key is a curve.
            n = len(payload[x_key])
            payload = {
                x_key: payload[x_key],
                "curves": {
                    k: v
                    for k, v in payload.items()
                    if k != x_key and isinstance(v, list) and len(v) == n
                },
            }
        print(render_curves(name, payload, x_key))


if __name__ == "__main__":
    main()
