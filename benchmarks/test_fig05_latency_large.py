"""Fig 5: starting/ending scheduling latencies, large reference run.

Paper: 8192 ranks, 1/N, reference — "the large execution struggle to
provide work to most workers: only 12.5% of the processes are active
after 10% of the execution", and occupancy "never exceeded 3538
processes (43%)".  Scaled stand-in: the large ladder's top (512) on
T3L: occupancy builds far more slowly than in Fig 4's small run and
the run tails off with many ranks starved.
"""

from __future__ import annotations

import numpy as np

from repro.bench.report import format_series, save_artifact

from benchmarks._shared import top_run

GRID = np.arange(0.05, 1.001, 0.05)


def _profile():
    return top_run("reference", "one").latency_profile(GRID)


def test_fig05_large_scale_latencies(once):
    profile = once(_profile)
    curves = {
        "SL": profile.starting.tolist(),
        "EL": profile.ending.tolist(),
    }
    print(
        format_series(
            "Fig 5: SL/EL vs occupancy, reference, large run",
            "occupancy",
            [round(float(x), 2) for x in GRID],
            curves,
        )
    )
    save_artifact(
        "fig05",
        {"occupancy": GRID.tolist(), **curves, "max_occupancy": profile.max_occupancy},
    )

    # Paper shape: the large reference run is starved — occupancy never
    # gets anywhere near full (paper: peaked at 43% on 8192 ranks; the
    # compressed ladder starves even harder).
    assert profile.max_occupancy < 0.6
    # Even low occupancies take a substantial slice of the runtime to
    # reach (paper: "only 12.5% of the processes are active after 10%
    # of the execution").
    idx10 = int(np.argmin(np.abs(GRID - 0.10)))
    sl10 = profile.starting[idx10]
    el10 = profile.ending[idx10]
    assert not np.isnan(sl10)
    assert sl10 > 0.005
    assert np.isnan(el10) or el10 > 0.05
