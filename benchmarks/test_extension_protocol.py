"""Extension: localized + cooperative stealing (ISSUE 10 acceptance).

On the paper-calibrated T3L/tofu-cluster preset (64 ranks,
hierarchical latency, NIC cost) the protocol extensions must *beat*
the baseline request/response protocol — asserted, not eyeballed:

* region-first forwarding (``forward[3]+regions[8]``) beats uniform
  random stealing on **makespan**;
* it also beats it on **mean failed-chain length** — relaying a denied
  request toward work converts long starvation chains into served
  forwards (the Project Picasso observation);
* plain forwarding already cuts the failed-steal count by an integer
  factor.

Makespans come from the ``protocol`` tournament preset (the recorded
leaderboard feeds EXPERIMENTS.md "Localized and cooperative
stealing"); chain statistics need event traces, which the tournament
cache deliberately drops, so those two runs happen directly.
"""

from __future__ import annotations

import numpy as np

from repro.bench.experiments import experiment_config
from repro.bench.report import format_table, save_artifact
from repro.protocol.variants import protocol_overrides
from repro.sim.cluster import Cluster
from repro.tournament import PRESETS, run_tournament
from repro.trace.analysis import TraceAnalysis
from repro.ws.results import RunResult

BASELINE = "steal"
FORWARDING = "forward[3]"
LOCALIZED = "forward[3]+regions[8]"


def _row(tournament, selector: str, protocol_tag: str) -> dict:
    for row in tournament.rows:
        if row["selector"] == selector and row["protocol"] == protocol_tag:
            return row
    raise KeyError(f"no row for {selector!r} / {protocol_tag!r}")


def _chain_stats(protocol_spec: str) -> tuple[RunResult, float]:
    cfg = experiment_config(
        "T3L",
        64,
        selector="rand",
        event_trace=True,
        **protocol_overrides(protocol_spec),
    )
    result = RunResult.from_outcome(Cluster(cfg).run())
    chains = TraceAnalysis(result.events).failed_chains()
    return result, float(np.mean(chains)) if chains else 0.0


def test_localized_forwarding_beats_uniform_random_on_t3l(once):
    def run_all():
        tournament = run_tournament(PRESETS["protocol"], jobs=None)
        base_res, base_chain = _chain_stats(BASELINE)
        loc_res, loc_chain = _chain_stats(LOCALIZED)
        return tournament, (base_res, base_chain), (loc_res, loc_chain)

    tournament, (base_res, base_chain), (loc_res, loc_chain) = once(run_all)

    print("== Protocol tournament: T3L x64, calibrated ==")
    print(
        format_table(
            ["selector", "protocol", "makespan", "success", "failed"],
            [
                [
                    r["selector"],
                    r["protocol"],
                    r["makespan"],
                    r["steal_success_rate"],
                    r["failed_steals"],
                ]
                for r in tournament.rows
            ],
        )
    )
    save_artifact(
        "extension_protocol_tournament",
        {
            "spec": tournament.spec.name,
            "rows": tournament.rows,
            "mean_failed_chain": {
                BASELINE: base_chain,
                LOCALIZED: loc_chain,
            },
        },
    )

    def makespan(protocol_tag: str) -> float:
        return _row(tournament, "rand", protocol_tag)["makespan"]

    # THE acceptance assertions (ISSUE 10): region-first forwarding
    # beats uniform random stealing on makespan AND on the mean
    # failed-chain length.
    assert makespan("fwd3+reg8") < makespan("steal")
    assert loc_chain < base_chain

    # Forwarding alone already helps the makespan...
    assert makespan("fwd3") < makespan("steal")
    # ...and collapses the failure traffic: most would-be denials are
    # relayed toward work instead.
    assert loc_res.requests_forwarded > 0
    assert base_res.requests_forwarded == 0
    assert loc_res.failed_steals < base_res.failed_steals / 2

    # The leaderboard is protocol-aware end to end: every preset spec
    # produced a distinctly-tagged row per selector.
    tags = {(r["selector"], r["protocol"]) for r in tournament.rows}
    assert len(tags) == len(tournament.rows)
