"""Fig 4: starting/ending scheduling latencies, small run.

Paper: 128 ranks, 1/N — "the work stealing process is able to provide
most workers with nodes shortly after the start of the execution, and
almost to the end of it: both latencies for an occupancy of 90% are
under 1% of the execution time."  Scaled stand-in: the small ladder's
top (64 ranks) on the small tree.
"""

from __future__ import annotations

import numpy as np

from repro.bench.experiments import CALIBRATION, SMALL_LADDER, cached_run, experiment_config
from repro.bench.report import format_series, render_ascii_curve, save_artifact

GRID = np.arange(0.05, 0.91, 0.05)


#: Mid-band scale: the paper's Fig 4 run (128 of its 8—128 band) sits
#: where efficiency is still high; that is 32 of our compressed band.
SCALE = SMALL_LADDER[-2]


def _profile():
    result = cached_run(
        experiment_config(
            CALIBRATION.small_tree,
            SCALE,
            allocation="1/N",
            selector="reference",
            steal_policy="one",
            trace=True,
        )
    )
    return result.latency_profile(GRID)


def test_fig04_small_scale_latencies(once):
    profile = once(_profile)
    curves = {
        "SL": profile.starting.tolist(),
        "EL": profile.ending.tolist(),
    }
    print(
        format_series(
            "Fig 4: SL/EL vs occupancy, reference, small run",
            "occupancy",
            [round(float(x), 2) for x in GRID],
            curves,
        )
    )
    print(render_ascii_curve(profile.starting.tolist()))
    save_artifact(
        "fig04",
        {"occupancy": GRID.tolist(), **curves, "max_occupancy": profile.max_occupancy},
    )

    # Paper shape: at small scale high occupancy is reached quickly
    # (single-digit % of the runtime) and held deep into the run.
    assert profile.max_occupancy >= 0.9
    idx90 = np.argmin(np.abs(GRID - 0.9))
    assert profile.starting[idx90] < 0.05
    assert profile.ending[idx90] < 0.25
    # SL is monotone in occupancy by construction.
    sl = profile.starting[~np.isnan(profile.starting)]
    assert np.all(np.diff(sl) >= -1e-12)
