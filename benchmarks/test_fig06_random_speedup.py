"""Fig 6: speedup with uniform random victim selection.

Paper: "using random selection results in better performance when
allocating only one process per node" (vs the reference), 1024—8192
processes.  At the compressed scales of this reproduction the
reference's deterministic ring walk still enjoys physical locality
(consecutive ranks are physically adjacent in a compact allocation),
so rand-vs-reference parity or better only at the 8-per-node
allocations is expected here — the crossover the paper observes needs
its top scales (see EXPERIMENTS.md).
"""

from __future__ import annotations

from repro.bench.experiments import LARGE_LADDER
from repro.bench.report import format_series, save_artifact

from benchmarks._shared import large_sweep, speedups


def _series():
    curves = speedups(large_sweep("rand", "one"), label="Rand")
    ref = speedups(large_sweep("reference", "one"), allocations=("1/N",), label="Reference")
    curves.update(ref)
    return curves


def test_fig06_random_selection_speedup(once):
    curves = once(_series)
    print(
        format_series(
            "Fig 6: speedup, random selection (reference 1/N for comparison)",
            "nranks",
            LARGE_LADDER,
            curves,
        )
    )
    save_artifact("fig06", {"x": list(LARGE_LADDER), "curves": curves})

    # Rand scales into the ladder before the compressed-scale ceiling:
    # its peak is at or above its starting point.
    one_n = curves["Rand 1/N"]
    assert max(one_n) >= one_n[0]
    # Rand's allocations spread less pathologically than reference's:
    # its worst allocation at top scale is within 3x of its best.
    top = [curves[f"Rand {a}"][-1] for a in ("1/N", "8RR", "8G")]
    assert max(top) / min(top) < 3.5
