"""Fig 16: victim-selection improvement vs work granularity.

Paper: sweeping the SHA rounds per node creation (1—24) on 8192 nodes,
"as granularity increases, the difference in improvement between the
two random strategies diminishes.  Indeed, as each steal provides more
work (in compute time) to the thief, the impact of varying latencies
between steal requests on work balance is lowered."

The y-value is the runtime improvement of Rand-Half and Tofu-Half over
Reference-Half at the same granularity.
"""

from __future__ import annotations

from repro.bench.experiments import CALIBRATION, cached_run, experiment_config
from repro.bench.report import format_series, save_artifact

ROUNDS = (1, 2, 4, 8, 16, 24)
NRANKS = 256  # top scale affordable for a 6-point granularity sweep


def _run(selector: str, rounds: int):
    return cached_run(
        experiment_config(
            CALIBRATION.large_tree,
            NRANKS,
            allocation="1/N",
            selector=selector,
            steal_policy="half",
            compute_rounds=rounds,
            trace=True,
        )
    )


def _series():
    curves = {"Rand Half": [], "Tofu Half": []}
    for rounds in ROUNDS:
        base = _run("reference", rounds).total_time
        for label, sel in (("Rand Half", "rand"), ("Tofu Half", "tofu")):
            t = _run(sel, rounds).total_time
            curves[label].append(100.0 * (base - t) / base)
    return curves


def test_fig16_granularity_sweep(once):
    curves = once(_series)
    print(
        format_series(
            "Fig 16: runtime improvement over Reference Half (%) vs SHA rounds",
            "rounds",
            ROUNDS,
            curves,
        )
    )
    save_artifact("fig16", {"rounds": list(ROUNDS), "curves": curves})

    # Paper shape: "as granularity increases, the difference in
    # improvement between the two random strategies diminishes" — both
    # improvement curves collapse toward zero as each stolen node
    # carries more compute time.
    for name in ("Tofu Half", "Rand Half"):
        series = curves[name]
        assert series[0] > series[-1] + 5.0, name  # strong decline
        assert series[0] > 15.0, name  # selector matters at fine grain
        assert abs(series[-1]) < 10.0, name  # and hardly at coarse grain
    # The tofu-vs-rand gap at coarse granularity is within noise.
    coarse_gap = curves["Tofu Half"][-1] - curves["Rand Half"][-1]
    assert abs(coarse_gap) < 5.0
