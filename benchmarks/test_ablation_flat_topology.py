"""Ablation: the equidistant null model.

"Most studies of work stealing assume that all participating processes
are equidistant from each other" — under that assumption (the
:class:`~repro.net.topology.FlatTopology` + uniform latency), the
distance-skewed selector has nothing to exploit and must coincide with
uniform random.  This is the control experiment for the whole paper.
"""

from __future__ import annotations

from repro.bench.experiments import CALIBRATION, cached_run, experiment_config
from repro.bench.report import format_table, save_artifact
from repro.net.latency import UniformLatency
from repro.net.topology import FlatTopology

NRANKS = 256


def _rows():
    rows = []
    for selector in ("rand", "tofu"):
        r = cached_run(
            experiment_config(
                CALIBRATION.large_tree,
                NRANKS,
                allocation="1/N",
                selector=selector,
                steal_policy="half",
                latency_model=UniformLatency(2e-6),
                topology_factory=lambda n: FlatTopology(n),
                trace=True,
            )
        )
        rows.append([selector, r.speedup, r.failed_steals])
    return rows


def test_ablation_equidistant_null_model(once):
    rows = once(_rows)
    print("== Ablation: equidistant (flat) topology, x%d ==" % NRANKS)
    print(format_table(["selector", "speedup", "failed"], rows))
    save_artifact("ablation_flat", {"rows": rows})

    rand_sp = rows[0][1]
    tofu_sp = rows[1][1]
    # With no distances to exploit, tofu degenerates to uniform random:
    # parity within a noise band.
    assert abs(tofu_sp - rand_sp) / rand_sp < 0.2
