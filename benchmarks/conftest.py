"""Shared helpers for the benchmark suite.

Every benchmark runs its experiment exactly once
(``benchmark.pedantic(..., rounds=1, iterations=1)``); the underlying
simulations are memoised in :mod:`repro.bench.experiments`, so figures
sharing sweeps (Fig 3's runs also feed Figs 7/10/14/15) compute each
distinct run once per pytest session.  Measured series are persisted
to ``benchmarks/_artifacts/*.json`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def once(benchmark):
    """Run a zero-arg callable exactly once under pytest-benchmark."""

    def runner(fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1)

    return runner
