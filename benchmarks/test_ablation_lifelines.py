"""Ablation: lifeline scheme (Saraswat et al.) vs plain stealing.

The paper's related work positions lifelines as the contention-control
alternative to victim-selection tuning.  The comparison here: same
selector, with and without lifelines — lifelines should slash failed
steals (idle ranks quiesce instead of hammering).
"""

from __future__ import annotations

from repro.bench.experiments import CALIBRATION, cached_run, experiment_config
from repro.bench.report import format_table, save_artifact

NRANKS = 256
VARIANTS = (
    ("rand, no lifelines", "rand", 0, 8),
    ("rand + 2 lifelines", "rand", 2, 8),
    ("rand + 4 lifelines", "rand", 4, 8),
    ("tofu/half, no lifelines", "tofu", 0, 8),
)


def _rows():
    rows = []
    for label, selector, lifelines, threshold in VARIANTS:
        policy = "half" if "half" in label else "one"
        r = cached_run(
            experiment_config(
                CALIBRATION.large_tree,
                NRANKS,
                allocation="1/N",
                selector=selector,
                steal_policy=policy,
                lifelines=lifelines,
                lifeline_threshold=threshold,
                trace=True,
            )
        )
        rows.append([label, r.speedup, r.failed_steals, r.mean_search_time * 1e3])
    return rows


def test_ablation_lifelines(once):
    rows = once(_rows)
    print("== Ablation: lifelines (x%d, 1/N) ==" % NRANKS)
    print(format_table(["variant", "speedup", "failed", "search_ms"], rows))
    save_artifact(
        "ablation_lifelines",
        {"rows": [[r[0], r[1], r[2], r[3]] for r in rows]},
    )

    by_label = {r[0]: r for r in rows}
    base_failed = by_label["rand, no lifelines"][2]
    life_failed = by_label["rand + 2 lifelines"][2]
    # Lifelines cut failed steals dramatically.
    assert life_failed < base_failed / 2
    # And do not destroy throughput (within 40% of plain rand).
    assert by_label["rand + 2 lifelines"][1] > by_label["rand, no lifelines"][1] * 0.6
