"""Fig 14: average search time of a process.

Paper: "taking into account network latencies and stealing half the
chunks of the victim greatly diminishes the time spent searching for
work."
"""

from __future__ import annotations

from repro.bench.experiments import LARGE_LADDER
from repro.bench.report import format_series, save_artifact

from benchmarks._shared import ALLOCATIONS, large_sweep


def _series():
    ref = large_sweep("reference", "one", allocations=("1/N",))
    opt = large_sweep("tofu", "half")
    curves = {
        "Reference 1/N": [
            ref[(n, "1/N")].mean_search_time * 1e3 for n in LARGE_LADDER
        ]
    }
    for a in ALLOCATIONS:
        curves[f"Tofu Half {a}"] = [
            opt[(n, a)].mean_search_time * 1e3 for n in LARGE_LADDER
        ]
    return curves


def test_fig14_average_search_time(once):
    curves = once(_series)
    print(
        format_series(
            "Fig 14: average per-process search time (ms)",
            "nranks",
            LARGE_LADDER,
            curves,
        )
    )
    save_artifact("fig14", {"x": list(LARGE_LADDER), "curves": curves})

    # Paper shape: the optimised 1/N spends far less time searching
    # than the reference at top scale.
    assert curves["Tofu Half 1/N"][-1] < curves["Reference 1/N"][-1]
    # Search time grows with scale for the reference (work gets scarce).
    ref = curves["Reference 1/N"]
    assert ref[-1] > ref[0]
