"""Fig 15: failed steals, reference vs optimised (Tofu Half).

Paper: "The number of steals failing also decreases, as a result of
better work distribution."
"""

from __future__ import annotations

from repro.bench.experiments import LARGE_LADDER
from repro.bench.report import format_series, save_artifact

from benchmarks._shared import ALLOCATIONS, large_sweep


def _series():
    ref = large_sweep("reference", "one", allocations=("1/N",))
    opt = large_sweep("tofu", "half")
    curves = {
        "Reference 1/N": [ref[(n, "1/N")].failed_steals for n in LARGE_LADDER]
    }
    for a in ALLOCATIONS:
        curves[f"Tofu Half {a}"] = [
            opt[(n, a)].failed_steals for n in LARGE_LADDER
        ]
    return curves


def test_fig15_failed_steals_comparison(once):
    curves = once(_series)
    print(
        format_series(
            "Fig 15: failed steals, reference vs Tofu Half",
            "nranks",
            LARGE_LADDER,
            curves,
        )
    )
    save_artifact("fig15", {"x": list(LARGE_LADDER), "curves": curves})

    # Paper shape: the optimised 1/N version fails fewer steals than
    # the reference (asserted at the largest in-regime scale; the
    # compressed ladder's 512-rank point is starvation-dominated for
    # every variant, see EXPERIMENTS.md).
    assert curves["Tofu Half 1/N"][-2] < curves["Reference 1/N"][-2]
    assert curves["Tofu Half 1/N"][0] < curves["Reference 1/N"][0]
    # Counts grow with scale (scarcity grows).
    for name, series in curves.items():
        assert series[-1] >= series[0], name
