"""Fig 2: efficiency of the reference implementation at small scale.

Paper: 8—128 MPI processes, tree T3XXL, allocations 1/N / 8RR / 8G —
"this UTS implementation performs very well for small numbers of MPI
processes" and the three allocations are nearly indistinguishable.
Scaled stand-in: 8—64 ranks on T3M.
"""

from __future__ import annotations

import numpy as np

from repro.bench.experiments import CALIBRATION, SMALL_LADDER
from repro.bench.report import format_series, save_artifact
from repro.bench.sweep import sweep

ALLOCATIONS = ("1/N", "8RR", "8G")


def _series():
    res = sweep(
        CALIBRATION.small_tree,
        SMALL_LADDER,
        allocations=ALLOCATIONS,
        selector="reference",
        steal_policy="one",
        trace=True,
    )
    return {
        f"Reference {a}": [res[(n, a)].efficiency for n in SMALL_LADDER]
        for a in ALLOCATIONS
    }


def test_fig02_small_scale_efficiency(once):
    curves = once(_series)
    print(
        format_series(
            "Fig 2: efficiency, reference selector, small scale",
            "nranks",
            SMALL_LADDER,
            curves,
        )
    )
    save_artifact("fig02", {"x": list(SMALL_LADDER), "curves": curves})

    for name, series in curves.items():
        # Paper shape: high efficiency at small scale...
        assert series[0] > 0.9, f"{name} at 8 ranks should be near-ideal"
        assert min(series[:3]) > 0.75
        # ...and monotone decay with scale (no cliff inside the band).
        assert all(b <= a * 1.05 for a, b in zip(series, series[1:]))
    # Allocations nearly indistinguishable at small scale (< 10% spread).
    arr = np.array(list(curves.values()))
    spread = (arr.max(axis=0) - arr.min(axis=0)) / arr.mean(axis=0)
    assert spread.max() < 0.15
