"""Fig 11: speedup of the steal-half variants.

Paper: "the combined use of our skewed victim selection and
half-stealing performs 3 times better than the original.  More
importantly, this last version is able to speedup up to 8192 MPI
processes."
"""

from __future__ import annotations

from repro.bench.experiments import LARGE_LADDER
from repro.bench.report import format_series, save_artifact

from benchmarks._shared import large_sweep


def _series():
    variants = {
        "Reference": ("reference", "one"),
        "Reference Half": ("reference", "half"),
        "Tofu": ("tofu", "one"),
        "Rand Half": ("rand", "half"),
        "Tofu Half": ("tofu", "half"),
    }
    curves = {}
    for name, (sel, pol) in variants.items():
        res = large_sweep(sel, pol, allocations=("1/N",))
        curves[name] = [res[(n, "1/N")].speedup for n in LARGE_LADDER]
    return curves


def test_fig11_steal_half_speedup(once):
    curves = once(_series)
    print(
        format_series(
            "Fig 11: speedup of steal-half variants (1/N)",
            "nranks",
            LARGE_LADDER,
            curves,
        )
    )
    save_artifact("fig11", {"x": list(LARGE_LADDER), "curves": curves})

    # The compressed ladder's last point (512 ranks on a ~6.7e5-node
    # tree) sits beyond the scaled tree's parallel width, where every
    # variant collapses (paper's 8192-rank runs had ~4 orders of
    # magnitude more work per rank); the paper shapes are asserted at
    # the largest in-regime scale, see EXPERIMENTS.md.
    at = {name: series[-2] for name, series in curves.items()}
    # Paper shape 1: Tofu Half is the best variant.
    assert at["Tofu Half"] == max(at.values())
    # Paper shape 2: a clear factor over the unmodified reference
    # (paper: ~3x at 8192; the compressed ladder shows >= 1.25x).
    assert at["Tofu Half"] > 1.25 * at["Reference"]
    # Paper shape 3: Tofu Half dominates the plain reference at every
    # scale of the ladder, including the collapsed top.
    for th, ref in zip(curves["Tofu Half"], curves["Reference"]):
        assert th > ref
    # Half-stealing helps the reference too, at every scale.
    for rh, ref in zip(curves["Reference Half"], curves["Reference"]):
        assert rh >= ref
