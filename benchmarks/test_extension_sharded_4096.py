"""Extension: Fig 3/4 re-run *in regime* at 4096 ranks (sharded engine).

The standard ladder tops out at 512 ranks, four orders of magnitude
below the paper's 8192 processes and outside its work-per-rank regime
(EXPERIMENTS.md "Validity boundary").  The sharded conservative-
lookahead engine (`repro.sim.shard`, bit-identical to the sequential
core) makes 4096-rank runs affordable, and the T3H tree (~32.1M nodes,
~7.8k nodes/rank) restores the paper's work-per-rank band.  This rung
replays the Fig 3 allocation comparison and the Fig 4 scheduling
latencies at that scale.

NIC serialisation is zeroed: the sharded engine excludes the global
order-sensitive NIC queue (DESIGN.md §5d).  That changes what Fig 3
can show here: without the shared-injection penalty the 8-per-node
allocations lose their handicap, and the measured allocation spread
collapses to <10% (8RR 200.1, 1/N 189.2, 8G 184.4) — the Fig 2
regime, where the paper itself found allocations indistinguishable.
The asserted shape is therefore the *collapse* of the allocation gap
under zero injection cost (the control for Fig 3's mechanism), not
8RR-worst, which needs the NIC model the ladder benchmarks keep.

Skipped by default (minutes of runtime); enable with::

    REPRO_EXTENDED=1 pytest benchmarks/test_extension_sharded_4096.py --benchmark-only
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.bench.experiments import cached_run, experiment_config
from repro.bench.report import format_table, save_artifact

NRANKS = 4096
TREE = "T3H"
GRID = np.arange(0.05, 0.91, 0.05)

pytestmark = [
    pytest.mark.slow,
    pytest.mark.skipif(
        not os.environ.get("REPRO_EXTENDED"),
        reason="extended-scale run; set REPRO_EXTENDED=1 to enable",
    ),
]


def _run(allocation: str):
    return cached_run(
        experiment_config(
            TREE,
            NRANKS,
            allocation=allocation,
            selector="reference",
            steal_policy="one",
            trace=True,
            nic_service_time=0.0,
            engine="sharded",
        )
    )


def _sweep():
    return {alloc: _run(alloc) for alloc in ("1/N", "8RR", "8G")}


def test_fig03_in_regime_4096(once):
    results = once(_sweep)
    rows = [
        [alloc, r.speedup, r.efficiency, r.failed_steals]
        for alloc, r in results.items()
    ]
    print(f"== Fig 3 in regime: x{NRANKS} ranks on {TREE} (sharded) ==")
    print(format_table(["allocation", "speedup", "eff", "failed"], rows))
    save_artifact(
        "extension_sharded_4096_fig03",
        {
            alloc: {
                "speedup": r.speedup,
                "efficiency": r.efficiency,
                "total_time": r.total_time,
                "failed_steals": r.failed_steals,
            }
            for alloc, r in results.items()
        },
    )

    values = [r.speedup for r in results.values()]
    # With injection cost zeroed the allocation gap collapses (< 10%):
    # Fig 3's 8RR-worst ordering is NIC-driven, and this rung is its
    # control.  The ladder benchmarks (fig03, NIC on) keep the
    # ordering assertion.
    assert max(values) < min(values) * 1.10
    # In regime the reference extracts far more parallelism than the
    # out-of-regime ladder top (512 ranks saturates near 60).
    assert results["1/N"].speedup > 150


def test_fig04_in_regime_4096(once):
    results = once(_sweep)
    profile = results["1/N"].latency_profile(GRID)
    save_artifact(
        "extension_sharded_4096_fig04",
        {
            "occupancy": GRID.tolist(),
            "SL": profile.starting.tolist(),
            "EL": profile.ending.tolist(),
            "max_occupancy": profile.max_occupancy,
        },
    )
    # Calibrated against the recorded artifact (max_occupancy 0.107,
    # SL(5%) 0.028, EL(5%) 0.245 — deterministic, so exact on rerun):
    # even in the work-per-rank regime the compressed tree's critical
    # path caps occupancy near 10% at 4096 ranks, but the machine
    # ramps to its plateau within ~3% of the runtime and holds it for
    # ~3/4 of the run — Fig 4's early-fill/late-drain shape, at the
    # occupancy level the drain tail allows.
    assert profile.max_occupancy >= 0.10
    idx05 = int(np.argmin(np.abs(GRID - 0.05)))
    assert profile.starting[idx05] < 0.05
    assert profile.ending[idx05] < 0.30
    # SL is monotone in occupancy by construction.
    sl = profile.starting[~np.isnan(profile.starting)]
    assert np.all(np.diff(sl) >= -1e-12)
