"""Extension: adaptive victim selection judged by the scenario tournament.

ROADMAP item 2 / ISSUE 8 acceptance rung: on the paper-calibrated
T3L/tofu-cluster preset (64 ranks, hierarchical latency, NIC cost) the
feedback-driven selectors (:mod:`repro.select`) must *beat* uniform
random on makespan — asserted, not eyeballed.  The tournament preset
sweeps every adaptive family against the static baselines under both
the steal-one policy and the adaptive escalation policy; the recorded
leaderboard artifact feeds EXPERIMENTS.md "Adaptive selection".

Measured facts this rung pins (deterministic, so exact on rerun):

* best adaptive selector under steal-one beats ``rand``/one;
* the overall winner combines an adaptive selector with the adaptive
  steal policy (``adapt-eps[0.1]`` + ``adaptive[3]``);
* steal-amount escalation alone helps: ``rand``+``adaptive[3]``
  beats ``rand``+one.

The full-registry sweep (60 configs on T3M) is a slow rung, gated like
the 4096-rank run.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.report import format_table, save_artifact
from repro.tournament import PRESETS, run_tournament

ADAPTIVE = ("adapt-eps[0.1]", "adapt-sr[0.9]", "adapt-backoff[2]")


def _leaderboard_artifact(tournament):
    return {
        "spec": tournament.spec.name,
        "rows": tournament.rows,
    }


def test_adaptive_beats_rand_on_t3l(once):
    tournament = once(
        lambda: run_tournament(PRESETS["adaptive"], jobs=None)
    )
    rows = tournament.rows
    print("== Adaptive tournament: T3L x64, calibrated ==")
    print(
        format_table(
            ["selector", "policy", "makespan", "success", "failed"],
            [
                [
                    r["selector"],
                    r["steal_policy"],
                    r["makespan"],
                    r["steal_success_rate"],
                    r["failed_steals"],
                ]
                for r in rows
            ],
        )
    )
    save_artifact("extension_adaptive_tournament", _leaderboard_artifact(tournament))

    def makespan(selector, policy):
        return tournament.row_for(selector, policy)["makespan"]

    # THE acceptance assertion (ISSUE 8): at least one adaptive
    # selector beats uniform random on makespan, like for like
    # (steal-one on both sides).
    best_adaptive_one = min(makespan(s, "one") for s in ADAPTIVE)
    assert best_adaptive_one < makespan("rand", "one")

    # The overall winner pairs an adaptive selector with adaptive
    # steal amounts.
    assert tournament.winner["selector"] in ADAPTIVE
    assert tournament.winner["steal_policy"] == "adaptive[3]"

    # Escalation helps even with a static selector: fewer failed
    # chains once starving thieves ask for half.
    assert makespan("rand", "adaptive[3]") < makespan("rand", "one")

    # Feedback shows up in the mechanism, not just the makespan: the
    # winner wastes fewer steal attempts than rand under the same
    # policy.
    winner = tournament.winner
    rand_row = tournament.row_for("rand", winner["steal_policy"])
    assert winner["steal_success_rate"] > rand_row["steal_success_rate"]
    assert winner["failed_steals"] < rand_row["failed_steals"]


@pytest.mark.slow
@pytest.mark.skipif(
    not os.environ.get("REPRO_EXTENDED"),
    reason="full-registry sweep; set REPRO_EXTENDED=1 to enable",
)
def test_full_registry_tournament(once):
    spec = PRESETS["full"]
    tournament = once(lambda: run_tournament(spec, jobs=None))
    assert len(tournament.rows) == len(spec.configs())
    labels = [r["label"] for r in tournament.rows]
    assert len(set(labels)) == len(labels)
    spans = [r["makespan"] for r in tournament.rows]
    assert spans == sorted(spans)
    save_artifact(
        "extension_full_tournament", _leaderboard_artifact(tournament)
    )
