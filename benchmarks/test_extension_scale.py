"""Extension: the paper's §VII future work — scaling past the ladder.

"Studying the scalability of UTS past tens of thousands of processes
is a natural extension of this study."  This opt-in experiment pushes
the simulation to 1024 ranks (2x the standard ladder's top, already
far past the scaled tree's parallel width) and records how each
strategy degrades.

Skipped by default (it adds minutes of runtime); enable with::

    REPRO_EXTENDED=1 pytest benchmarks/test_extension_scale.py --benchmark-only
"""

from __future__ import annotations

import os

import pytest

from repro.bench.experiments import CALIBRATION, cached_run, experiment_config
from repro.bench.report import format_table, save_artifact

NRANKS = 1024

pytestmark = [
    pytest.mark.slow,
    pytest.mark.skipif(
        not os.environ.get("REPRO_EXTENDED"),
        reason="extended-scale run; set REPRO_EXTENDED=1 to enable",
    ),
]


def _rows():
    rows = []
    for label, selector, policy in (
        ("Reference", "reference", "one"),
        ("Rand", "rand", "one"),
        ("Tofu Half", "tofu", "half"),
    ):
        r = cached_run(
            experiment_config(
                CALIBRATION.large_tree,
                NRANKS,
                allocation="1/N",
                selector=selector,
                steal_policy=policy,
                trace=True,
            )
        )
        curve = r.occupancy_curve()
        rows.append(
            [label, r.speedup, curve.max_occupancy, r.failed_steals]
        )
    return rows


def test_extension_extended_scale(once):
    rows = once(_rows)
    print(f"== Extension: x{NRANKS} ranks (past the scaled tree's width) ==")
    print(format_table(["strategy", "speedup", "max_occ", "failed"], rows))
    save_artifact("extension_scale", {"rows": rows})
    # Sanity only: all runs complete and conserve (conservation is
    # asserted inside the simulator); occupancy ceilings are expected.
    for row in rows:
        assert row[1] > 0
