"""Fig 8: the skewed victim probability distribution ``p(0, x)``.

Paper: "Probability distribution function of p(0,x) for a example
deployment on the K Computer over 1024 MPI processes, 1 per node" —
probabilities spread between ~8e-4 and ~4e-3, higher for physically
close ranks.  We regenerate it for a 1024-rank 1/N deployment of the
Tofu model.
"""

from __future__ import annotations

import numpy as np

from repro.bench.report import render_ascii_curve, save_artifact
from repro.core.victim import DistanceSkewedSelector
from repro.net.allocation import build_placement

NRANKS = 1024


def _distribution():
    placement = build_placement(NRANKS, "1/N")
    return placement, DistanceSkewedSelector().probabilities(0, placement)


def test_fig08_probability_distribution(once):
    placement, probs = once(_distribution)
    print("== Fig 8: p(0, x) over a 1024-rank 1/N deployment ==")
    print(render_ascii_curve(probs.tolist(), width=72, height=10))
    print(
        f"min={probs[probs > 0].min():.3e} max={probs.max():.3e} "
        f"uniform={1 / (NRANKS - 1):.3e}"
    )
    save_artifact(
        "fig08",
        {
            "rank": list(range(NRANKS)),
            "p": probs.tolist(),
            "uniform": 1 / (NRANKS - 1),
        },
    )

    # Normalised, zero self-probability, everyone reachable.
    assert probs[0] == 0.0
    assert probs.sum() == 1.0 or abs(probs.sum() - 1.0) < 1e-12
    assert np.all(probs[1:] > 0.0)
    # Paper shape: a few-times spread between nearest and farthest
    # victims (their figure spans roughly 8e-4 to 4e-3).
    ratio = probs.max() / probs[probs > 0].min()
    assert 2.0 < ratio < 50.0
    # Probability decreases with physical distance.
    e = placement.euclidean[0][1:]
    p = probs[1:]
    order = np.argsort(e)
    assert np.all(np.diff(p[order]) <= 1e-15)
